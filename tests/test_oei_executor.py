"""OEI functional executor: equality against sequential reference.

These are the legality tests of Section III — the OEI pair schedule
must compute bit-identical iterations for every semiring the paper's
workloads use, at any sub-tensor size.
"""

import numpy as np
import pytest

from repro.dataflow import DataflowGraph, compile_program
from repro.errors import ScheduleError
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.oei import run_oei_pairs, run_reference


def _split(coo):
    return CSCMatrix.from_coo(coo), CSRMatrix.from_coo(coo)


def _random(n, density, seed, positive=True):
    gen = np.random.default_rng(seed)
    lo = 0.1 if positive else -1.0
    dense = (gen.random((n, n)) < density) * gen.uniform(lo, 1.0, (n, n))
    return COOMatrix.from_dense(dense)


def pagerank_program():
    g = DataflowGraph("pagerank")
    L, pr, y = g.matrix("L"), g.vector("pr"), g.vector("y")
    scaled, new = g.vector("scaled"), g.vector("new")
    g.scalar("teleport")
    g.vxm("spmv", pr, L, y, "mul_add")
    g.ewise("damp", "times", [y], scaled, immediate=0.85)
    g.ewise("tele", "plus", [scaled], new, scalar_operand="teleport")
    g.carry(new, pr)
    return compile_program(g)


def sssp_program():
    g = DataflowGraph("sssp")
    a, dist, y, new = g.matrix("A"), g.vector("dist"), g.vector("y"), g.vector("new")
    g.vxm("relax", dist, a, y, "min_add")
    g.ewise("take_min", "min", [y, dist], new)
    g.carry(new, dist)
    return compile_program(g)


def bfs_program():
    g = DataflowGraph("bfs")
    a, f, y = g.matrix("A"), g.vector("front"), g.vector("reach")
    g.vxm("expand", f, a, y, "and_or")
    g.carry(y, f)
    return compile_program(g)


class TestEquality:
    @pytest.mark.parametrize("subtensor_cols", [1, 3, 16, 64, 200])
    def test_pagerank_matches_reference(self, subtensor_cols):
        coo = _random(53, 0.1, 3)
        csc, csr = _split(coo)
        prog = pagerank_program()
        x0 = np.full(53, 1.0 / 53)
        scal = lambda k, x: {"teleport": 0.15 / 53}
        ref = run_reference(csc, prog, x0, 6, scalar_update=scal)
        oei = run_oei_pairs(csc, csr, prog, x0, 6, scalar_update=scal,
                            subtensor_cols=subtensor_cols)
        for k in range(6):
            np.testing.assert_allclose(oei.y_history[k], ref.y_history[k])
            np.testing.assert_allclose(oei.x_history[k + 1], ref.x_history[k + 1])

    @pytest.mark.parametrize("n_iterations", [1, 2, 3, 4, 5])
    def test_odd_and_even_iteration_counts(self, n_iterations):
        coo = _random(31, 0.15, 4)
        csc, csr = _split(coo)
        prog = pagerank_program()
        x0 = np.ones(31) / 31
        scal = lambda k, x: {"teleport": 0.15 / 31}
        ref = run_reference(csc, prog, x0, n_iterations, scalar_update=scal)
        oei = run_oei_pairs(csc, csr, prog, x0, n_iterations,
                            scalar_update=scal, subtensor_cols=7)
        assert oei.n_iterations == n_iterations
        np.testing.assert_allclose(oei.final_x, ref.final_x)

    def test_sssp_min_add_with_aux(self):
        coo = _random(47, 0.12, 5)
        csc, csr = _split(coo)
        prog = sssp_program()
        dist0 = np.full(47, np.inf)
        dist0[0] = 0.0
        aux = lambda k, x: {"dist": x}
        ref = run_reference(csc, prog, dist0, 8, aux_provider=aux)
        oei = run_oei_pairs(csc, csr, prog, dist0, 8, aux_provider=aux,
                            subtensor_cols=10)
        np.testing.assert_allclose(oei.final_x, ref.final_x)
        # Distances must be monotonically non-increasing across iterations.
        for a, b in zip(ref.x_history, ref.x_history[1:]):
            assert np.all(b <= a + 1e-12)

    def test_bfs_and_or_noop_path(self):
        coo = _random(40, 0.08, 6)
        csc, csr = _split(coo)
        prog = bfs_program()
        f0 = np.zeros(40)
        f0[3] = 1.0
        ref = run_reference(csc, prog, f0, 6)
        oei = run_oei_pairs(csc, csr, prog, f0, 6, subtensor_cols=9)
        for k in range(6):
            np.testing.assert_array_equal(oei.y_history[k], ref.y_history[k])

    def test_scalars_updated_per_iteration(self):
        """Scalars recomputed from x_k each iteration flow correctly
        through both pair halves."""
        coo = _random(24, 0.2, 7)
        csc, csr = _split(coo)
        prog = pagerank_program()
        x0 = np.ones(24) / 24
        calls = []

        def scal(k, x):
            calls.append(k)
            return {"teleport": float(x.sum()) * 0.01}

        ref = run_reference(csc, prog, x0, 4, scalar_update=scal)
        calls.clear()
        oei = run_oei_pairs(csc, csr, prog, x0, 4, scalar_update=scal,
                            subtensor_cols=5)
        assert calls == [0, 1, 2, 3]
        np.testing.assert_allclose(oei.final_x, ref.final_x)


class TestErrors:
    def test_non_oei_program_rejected(self):
        g = DataflowGraph("plain")
        a, p, q = g.matrix("A", constant=False), g.vector("p"), g.vector("q")
        g.vxm("spmv", p, a, q, "mul_add")
        prog = compile_program(g)
        coo = _random(10, 0.3, 8)
        csc, csr = _split(coo)
        with pytest.raises(ScheduleError):
            run_oei_pairs(csc, csr, prog, np.zeros(10), 2)

    def test_rectangular_rejected(self):
        gen = np.random.default_rng(0)
        dense = (gen.random((4, 6)) < 0.5) * 1.0
        coo = COOMatrix.from_dense(dense)
        csc, csr = CSCMatrix.from_coo(coo), CSRMatrix.from_coo(coo)
        with pytest.raises(ScheduleError):
            run_oei_pairs(csc, csr, pagerank_program(), np.zeros(4), 2)
