"""The differential oracle: static bounds vs the simulator.

For every golden workload on both backends, build a
:class:`~repro.analysis.bounds.StaticReport` from structure alone and
check the simulated :class:`~repro.arch.stats.SimResult` against it —
every per-category traffic bound, the total, and the peak buffer
occupancy must hold (SP702/SP703 empty), and the static OEI verdict
must agree with what the simulator actually did (the profile's
``has_oei``). The vector/writeback bounds are additionally asserted
*tight* on constant-activity workloads, so a silently loosened
analyzer fails too.

A violation in either direction is a real bug: the analyzer's
soundness argument (docstring of :mod:`repro.analysis.bounds`) or the
simulator's accounting is wrong.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import (
    ABS_TOLERANCE_BYTES,
    REL_TOLERANCE,
    resolve_capacity,
    static_report,
    traffic_bounds,
)
from repro.arch.config import SparsepipeConfig
from repro.arch.loaders import LoadPlan
from repro.arch.simulator import SparsepipeSimulator
from repro.arch.stats import TRAFFIC_CATEGORIES
from repro.experiments.runner import ExperimentContext
from repro.matrices.suite import SUITE
from repro.workloads.registry import get_workload, workload_names

MATRIX = "gy"
WORKLOADS = tuple(workload_names())
BACKENDS = ("vectorized", "reference")


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(workloads=WORKLOADS, matrices=(MATRIX,))


@pytest.fixture(scope="module")
def prep(context):
    return context.prepared(MATRIX)


def _point(context, prep, workload: str, backend: str):
    config = SparsepipeConfig(backend=backend)
    profile = context.profile(workload, MATRIX)
    plan = LoadPlan.from_matrix(prep, config.subtensor_cols)
    capacity = resolve_capacity(config, plan, SUITE[MATRIX].paper_nnz)
    report = static_report(
        get_workload(workload).build_graph(), profile, plan, config,
        capacity, matrix=MATRIX,
    )
    result = SparsepipeSimulator(config).run(
        profile, prep, paper_nnz=SUITE[MATRIX].paper_nnz, observers=()
    )
    return profile, report, result


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_oracle_holds(context, prep, workload, backend):
    profile, report, result = _point(context, prep, workload, backend)

    oracle = report.check_against(result)
    assert oracle.ok, oracle.format()
    assert not oracle.has("SP702") and not oracle.has("SP703")

    # Static legality agrees with what the simulator actually ran.
    assert report.oei.fusible == profile.has_oei
    # And the graph-level absint diagnostics are clean.
    assert report.diagnostics.ok, report.diagnostics.format()


@pytest.mark.parametrize("workload", WORKLOADS)
def test_every_category_bounded(context, prep, workload):
    _, report, result = _point(context, prep, workload, "vectorized")
    for cat in TRAFFIC_CATEGORIES:
        actual = result.traffic.bytes_by_category[cat]
        bound = report.bounds.by_category[cat]
        assert actual <= bound * (1.0 + REL_TOLERANCE) + ABS_TOLERANCE_BYTES, (
            cat, actual, bound,
        )


def test_bounds_are_tight_where_claimed(context, prep):
    """cg/bgs never pair, have activity 1.0 throughout — the stream
    closed form must match the simulator to within float fold order."""
    for workload in ("cg", "bgs"):
        _, report, result = _point(context, prep, workload, "vectorized")
        assert result.traffic.total_bytes == pytest.approx(
            report.bounds.total_bytes, rel=1e-9
        )
        assert report.bounds.n_pairs == 0
        assert report.bounds.buffer_peak_bytes == 0.0
        assert result.buffer_peak_bytes == 0.0


def test_pair_counts_match_simulator_interleaving(context, prep):
    """The bound mirrors the simulator's pair/stream loop: an OEI
    profile with odd n_iterations ends on one trailing stream."""
    for workload in WORKLOADS:
        profile, report, _ = _point(context, prep, workload, "vectorized")
        n = profile.n_iterations
        if profile.has_oei:
            assert report.bounds.n_pairs == n // 2
            assert report.bounds.n_streams == n % 2
        else:
            assert report.bounds.n_pairs == 0
            assert report.bounds.n_streams == n


def test_violation_is_detected_not_swallowed(context, prep):
    """Corrupt a simulated result and the oracle must say SP702/SP703
    — guards against a vacuously-true check."""
    _, report, result = _point(context, prep, "pr", "vectorized")
    result.traffic.bytes_by_category["csc"] += 1e9
    oracle = report.check_against(result)
    assert oracle.has("SP702")

    _, report2, result2 = _point(context, prep, "pr", "vectorized")
    result2.buffer_peak_bytes = report2.bounds.buffer_peak_bytes * 2 + 10
    assert report2.check_against(result2).has("SP703")


def test_eager_toggle_shifts_bound_between_categories(context, prep):
    """eager_is=False must drop the csr_eager budget entirely (the
    bound mirrors the config branch, not a worst case over configs)."""
    profile = context.profile("pr", MATRIX)
    base = SparsepipeConfig(backend="vectorized")
    lazy = SparsepipeConfig(backend="vectorized", eager_is=False)
    plan = LoadPlan.from_matrix(prep, base.subtensor_cols)
    cap = resolve_capacity(base, plan, SUITE[MATRIX].paper_nnz)
    eager_b = traffic_bounds(profile, plan, base, cap)
    lazy_b = traffic_bounds(profile, plan, lazy, cap)
    assert eager_b.by_category["csr_eager"] > 0.0
    assert lazy_b.by_category["csr_eager"] == 0.0
    assert lazy_b.by_category["csc"] == eager_b.by_category["csc"]


def test_report_to_dict_is_json_plain(context, prep):
    import json

    _, report, _ = _point(context, prep, "gcn", "vectorized")
    doc = json.loads(json.dumps(report.to_dict(), sort_keys=True))
    assert doc["workload"] == "gcn"
    assert doc["oei"]["fusible"] is True
    assert doc["bounds"]["total_bytes"] > 0
    assert all(e["nnz_hi"] is None or e["nnz_hi"] >= 0
               for e in doc["edges"].values())
