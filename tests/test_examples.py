"""Smoke tests: every example script runs to completion.

Examples are the user-facing API contract; these tests keep them
working as the library evolves. Each runs in a subprocess with the
repository's interpreter.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _run(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


def test_all_examples_present():
    assert set(ALL_EXAMPLES) >= {
        "quickstart.py",
        "graph_analytics.py",
        "scientific_solvers.py",
        "reuse_analysis.py",
        "design_space.py",
        "auto_oei_discovery.py",
    }


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name):
    result = _run(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{name} produced no output"


def test_quickstart_verifies_oei(capsys):
    result = _run("quickstart.py")
    assert "verified" in result.stdout
    assert "speedup" in result.stdout


def test_reuse_analysis_accepts_matrix_file(tmp_path):
    from repro.formats.matrix_market import write_matrix_market
    from tests.conftest import random_coo

    path = tmp_path / "m.mtx"
    write_matrix_market(random_coo(4, n=40), path)
    result = _run("reuse_analysis.py", str(path))
    assert result.returncode == 0
    assert "OEI reuse-window footprint" in result.stdout
