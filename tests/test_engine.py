"""Tests for the engine layer: the architecture registry, pluggable
instrumentation, the persistent result cache, and the parallel
experiment fan-out."""

import json
from dataclasses import replace

import pytest

import repro.engine.registry as registry_mod
import repro.experiments.runner as runner_mod
from repro.arch.config import SparsepipeConfig
from repro.arch.profile import WorkloadProfile
from repro.arch.simulator import SparsepipeSimulator
from repro.engine import (
    FILL_STEP,
    CounterObserver,
    EventLogObserver,
    Instrumentation,
    Observer,
    ResultCache,
    StepTraceObserver,
    arch_names,
    create_engine,
    get_arch,
    register_arch,
)
from repro.errors import ConfigError
from repro.experiments.runner import ExperimentContext
from repro.matrices import banded_mesh
from repro.preprocess import preprocess

BUILTINS = ("sparsepipe", "ideal", "oracle", "cpu", "gpu", "software_oei")


def make_profile(**overrides) -> WorkloadProfile:
    base = dict(
        name="pr",
        semiring_name="mul_add",
        has_oei=True,
        n_iterations=4,
        path_ewise_ops=2,
        side_ewise_ops=1,
        aux_streams=0,
        writeback_streams=1,
    )
    base.update(overrides)
    return WorkloadProfile(**base)


@pytest.fixture(scope="module")
def prep():
    return preprocess(banded_mesh(300, 12, 1800, seed=7), reorder=None, block_size=None)


class TestRegistry:
    def test_builtins_in_canonical_order(self):
        names = arch_names()
        assert names[: len(BUILTINS)] == BUILTINS

    def test_unknown_architecture_raises(self):
        with pytest.raises(ConfigError, match="unknown architecture"):
            get_arch("tpu")

    def test_unknown_error_lists_alternatives(self):
        with pytest.raises(ConfigError, match="sparsepipe"):
            create_engine("npu")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            @register_arch("sparsepipe")
            class Clash:  # pragma: no cover - never registered
                pass

    def test_third_party_registration_and_creation(self):
        @register_arch("null-engine", takes_config=False,
                       description="does nothing")
        class NullEngine:
            def prepare(self, profile, matrix):
                return None

            def run(self, profile, matrix, paper_nnz=None):
                return "ran"

        try:
            assert "null-engine" in arch_names()
            # Third-party names list after the built-ins.
            assert arch_names().index("null-engine") >= len(BUILTINS)
            engine = create_engine("null-engine")
            assert engine.run(None, None) == "ran"
            assert get_arch("null-engine").description == "does nothing"
        finally:
            del registry_mod._REGISTRY["null-engine"]

    def test_takes_config_flags(self):
        assert get_arch("sparsepipe").takes_config
        assert get_arch("ideal").takes_config
        assert not get_arch("cpu").takes_config
        assert not get_arch("software_oei").takes_config

    def test_config_reaches_the_engine(self):
        config = SparsepipeConfig(subtensor_cols=64)
        engine = create_engine("sparsepipe", config)
        assert isinstance(engine, SparsepipeSimulator)
        assert engine.config.subtensor_cols == 64

    def test_configless_creation_uses_defaults(self):
        engine = create_engine("sparsepipe")
        assert engine.config == SparsepipeConfig()

    def test_every_builtin_prepares_and_runs(self, prep):
        profile = make_profile(n_iterations=2)
        for name in BUILTINS:
            engine = create_engine(name)
            assert engine.prepare(profile, prep) is not None
            result = engine.run(profile, prep)
            assert result.cycles > 0, name


class TestCacheKey:
    def test_equal_configs_equal_keys(self):
        assert SparsepipeConfig().cache_key() == SparsepipeConfig().cache_key()

    def test_different_configs_differ(self):
        base = SparsepipeConfig()
        assert base.cache_key() != replace(base, subtensor_cols=64).cache_key()
        assert base.cache_key() != replace(base, buffer_bytes=1024).cache_key()

    def test_key_is_compact_hex(self):
        key = SparsepipeConfig().cache_key()
        assert len(key) == 16
        int(key, 16)  # raises if not hex


class TestInstrumentation:
    def test_zero_observer_matches_default_except_samples(self, prep):
        profile = make_profile()
        sim = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32))
        default = sim.run(profile, prep)
        bare = sim.run(profile, prep, observers=())
        assert bare.bandwidth_samples == []
        assert default.bandwidth_samples  # default keeps Fig 15 samples
        assert bare.cycles == default.cycles  # bit-identical, not approx
        assert bare.traffic == default.traffic
        assert replace(bare, bandwidth_samples=default.bandwidth_samples) == default

    def test_step_events_close_each_step(self, prep):
        log = EventLogObserver()
        sim = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32))
        sim.run(make_profile(), prep, observers=[log])
        assert log.events[-1][0] == "step"
        # Every non-step event belongs to the step event that follows it.
        open_step = None
        for ev in log.events:
            if ev[0] == "step":
                step = ev[1]
                if open_step is not None and step != FILL_STEP:
                    assert step == open_step
                open_step = None
            elif ev[0] in ("evict", "repack", "prefetch"):
                if open_step is None:
                    open_step = ev[1]
                else:
                    assert ev[1] == open_step

    def test_fill_steps_once_per_pair(self, prep):
        log = EventLogObserver()
        sim = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32))
        sim.run(make_profile(n_iterations=4), prep, observers=[log])
        fills = [e for e in log.events if e[0] == "step" and e[1] == FILL_STEP]
        assert len(fills) == 2  # 4 OEI iterations = 2 pairs

    def test_counters_agree_with_result(self, prep):
        counter = CounterObserver()
        sim = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32))
        result = sim.run(make_profile(), prep, observers=[counter])
        assert counter.cycles == result.cycles
        assert sum(counter.transfer_bytes.values()) == pytest.approx(
            result.traffic.total_bytes
        )
        for cat, n_bytes in counter.transfer_bytes.items():
            assert result.traffic.bytes_by_category[cat] == pytest.approx(n_bytes)
        assert counter.repack_events == result.repack_events
        assert counter.evict_bytes == pytest.approx(result.oom_evicted_bytes)
        flat = counter.as_dict()
        assert flat["steps"] == counter.steps
        assert "transfer_bytes[csc]" in flat

    def test_multiple_observers_see_the_same_stream(self, prep):
        a, b = EventLogObserver(), EventLogObserver()
        sim = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32))
        sim.run(make_profile(), prep, observers=[a, b])
        assert a.events == b.events

    def test_find_returns_first_of_type(self):
        trace = StepTraceObserver()
        instr = Instrumentation((CounterObserver(), trace))
        assert instr.find(StepTraceObserver) is trace
        assert instr.find(EventLogObserver) is None

    def test_instrumentation_truthiness(self):
        assert not Instrumentation(())
        assert Instrumentation((Observer(),))

    def test_pipeline_activity_observer_renders(self, prep):
        from repro.arch.pipeline_viz import PipelineActivityObserver

        obs = PipelineActivityObserver()
        sim = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32))
        sim.run(make_profile(), prep, observers=[obs])
        names = set(obs.bottlenecks())
        assert obs.steps
        assert names <= {"os", "ewise", "is", "extra", "memory", "overhead"}
        chart = obs.render_bottlenecks(max_steps=8)
        assert "#" in chart or "+" in chart


class TestResultCache:
    def _result(self, prep):
        sim = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32))
        return sim.run(make_profile(), prep)

    def test_round_trip(self, prep, tmp_path):
        result = self._result(prep)
        cache = ResultCache(tmp_path)
        key = ("sparsepipe", "pr", "gy", "abc123", "vanilla", 256)
        assert cache.get(*key) is None
        cache.put(*key, result=result)
        assert len(cache) == 1
        restored = cache.get(*key)
        assert restored == result  # dataclass equality, bit-for-bit floats

    def test_distinct_keys_do_not_collide(self, prep, tmp_path):
        result = self._result(prep)
        cache = ResultCache(tmp_path)
        cache.put("sparsepipe", "pr", "gy", "abc", None, None, result=result)
        assert cache.get("sparsepipe", "pr", "gy", "OTHER", None, None) is None
        assert cache.get("ideal", "pr", "gy", "abc", None, None) is None

    def test_code_version_bump_invalidates(self, prep, tmp_path):
        result = self._result(prep)
        key = ("sparsepipe", "pr", "gy", "abc", None, None)
        ResultCache(tmp_path, code_version="1").put(*key, result=result)
        assert ResultCache(tmp_path, code_version="1").get(*key) == result
        assert ResultCache(tmp_path, code_version="2").get(*key) is None

    def test_corrupt_entry_is_a_miss(self, prep, tmp_path):
        result = self._result(prep)
        cache = ResultCache(tmp_path)
        key = ("sparsepipe", "pr", "gy", "abc", None, None)
        path = cache.put(*key, result=result)
        path.write_text("not json{")
        assert cache.get(*key) is None
        doc = {"key": "wrong", "result": result.to_dict()}
        path.write_text(json.dumps(doc))
        assert cache.get(*key) is None

    def test_clear_removes_everything(self, prep, tmp_path):
        result = self._result(prep)
        cache = ResultCache(tmp_path)
        cache.put("a", "pr", "gy", "k", None, None, result=result)
        cache.put("b", "pr", "gy", "k", None, None, result=result)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestDiskCachedContext:
    def test_warm_rerun_skips_all_simulation(self, tmp_path, monkeypatch):
        cold = ExperimentContext(
            workloads=("pr",), matrices=("gy",), cache_dir=tmp_path
        )
        first = cold.simulate("ideal", "pr", "gy")

        def explode(*a, **kw):  # a warm rerun must never build an engine
            raise AssertionError("engine constructed on a warm rerun")

        warm = ExperimentContext(
            workloads=("pr",), matrices=("gy",), cache_dir=tmp_path
        )
        monkeypatch.setattr(runner_mod, "run_engine", explode)
        second = warm.simulate("ideal", "pr", "gy")
        assert second == first
        many = warm.simulate_many([("ideal", "pr", "gy")] * 3)
        assert many == [first] * 3

    def test_code_version_bump_forces_resimulation(self, tmp_path, monkeypatch):
        import repro.engine.cache as cache_mod

        ctx = ExperimentContext(matrices=("gy",), cache_dir=tmp_path)
        ctx.simulate("ideal", "pr", "gy")
        monkeypatch.setattr(cache_mod, "CODE_VERSION", "999")
        fresh = ExperimentContext(matrices=("gy",), cache_dir=tmp_path)
        ran = []
        real = runner_mod.run_engine

        def counting(name, config, *a, **kw):
            ran.append(name)
            return real(name, config, *a, **kw)

        monkeypatch.setattr(runner_mod, "run_engine", counting)
        fresh.simulate("ideal", "pr", "gy")
        assert ran == ["ideal"]


class TestSimulateMany:
    POINTS = [
        ("sparsepipe", "pr", "gy"),
        ("ideal", "pr", "gy"),
        ("software_oei", "pr", "gy"),
        ("sparsepipe", "sssp", "ro"),
        ("ideal", "sssp", "ro"),
    ]

    def test_parallel_equals_serial_bit_for_bit(self):
        serial = ExperimentContext().simulate_many(self.POINTS)
        parallel = ExperimentContext(max_workers=2).simulate_many(self.POINTS)
        assert parallel == serial

    def test_results_in_input_order(self):
        ctx = ExperimentContext()
        results = ctx.simulate_many(self.POINTS)
        assert [r is ctx.simulate(*p) for p, r in zip(self.POINTS, results)] == [
            True
        ] * len(self.POINTS)

    def test_duplicates_collapse_to_one_entry(self):
        ctx = ExperimentContext(max_workers=2)
        results = ctx.simulate_many([("ideal", "pr", "gy")] * 4)
        assert len(results) == 4
        assert all(r is results[0] for r in results)

    def test_unknown_architecture_rejected_up_front(self):
        with pytest.raises(ConfigError, match="unknown architecture"):
            ExperimentContext().simulate_many([("tpu", "pr", "gy")])

    def test_explicit_workers_override_context_default(self):
        serial = ExperimentContext()
        wide = ExperimentContext()
        a = serial.simulate_many(self.POINTS, max_workers=None)
        b = wide.simulate_many(self.POINTS, max_workers=2)
        assert a == b
