"""Tests for the GraphBLAS-mini graph algorithms against networkx."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.formats.coo import COOMatrix
from repro.graphblas import Matrix
from repro.graphblas.algorithms import (
    connected_components,
    reachable_from,
    triangle_count,
)
from repro.matrices import erdos_renyi, watts_strogatz


def _nx_graph(matrix: Matrix, directed: bool):
    nx = pytest.importorskip("networkx")
    g = nx.DiGraph() if directed else nx.Graph()
    g.add_nodes_from(range(matrix.nrows))
    coo = matrix.coo
    g.add_edges_from(zip(coo.rows.tolist(), coo.cols.tolist()))
    return g


@pytest.fixture(scope="module")
def random_graph():
    return Matrix(erdos_renyi(60, 500, seed=23))


class TestTriangleCount:
    def test_matches_networkx(self, random_graph):
        nx = pytest.importorskip("networkx")
        ours = triangle_count(random_graph)
        g = _nx_graph(random_graph, directed=False)
        theirs = sum(nx.triangles(g).values()) // 3
        assert ours == theirs

    def test_known_triangle(self):
        dense = np.zeros((4, 4))
        for i, j in ((0, 1), (1, 2), (2, 0)):
            dense[i, j] = 1.0
        assert triangle_count(Matrix.from_dense(dense)) == 1

    def test_triangle_free(self):
        # A path graph has no triangles.
        dense = np.zeros((5, 5))
        for i in range(4):
            dense[i, i + 1] = 1.0
        assert triangle_count(Matrix.from_dense(dense)) == 0

    def test_small_world(self):
        graph = Matrix(watts_strogatz(80, k=6, rewire=0.1, seed=2))
        nx = pytest.importorskip("networkx")
        g = _nx_graph(graph, directed=False)
        assert triangle_count(graph) == sum(nx.triangles(g).values()) // 3

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            triangle_count(Matrix(COOMatrix.empty((3, 4))))


class TestConnectedComponents:
    def test_matches_networkx_weak_components(self, random_graph):
        nx = pytest.importorskip("networkx")
        labels, n_components = connected_components(random_graph)
        g = _nx_graph(random_graph, directed=True)
        theirs = list(nx.weakly_connected_components(g))
        assert n_components == len(theirs)
        # Same partition: same-label iff same nx component.
        comp_of = {}
        for cid, members in enumerate(theirs):
            for v in members:
                comp_of[v] = cid
        for u in range(random_graph.nrows):
            for v in range(u + 1, random_graph.nrows):
                assert (labels[u] == labels[v]) == (comp_of[u] == comp_of[v])

    def test_two_islands(self):
        coo = COOMatrix(
            (6, 6), np.array([0, 1, 3, 4]), np.array([1, 2, 4, 5]), np.ones(4)
        )
        labels, n = connected_components(Matrix(coo))
        assert n == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_isolated_vertices_are_singletons(self):
        labels, n = connected_components(Matrix(COOMatrix.empty((4, 4))))
        assert n == 4
        assert sorted(labels) == [0, 1, 2, 3]

    def test_labels_are_component_minima(self):
        coo = COOMatrix((4, 4), np.array([3]), np.array([1]), np.ones(1))
        labels, _ = connected_components(Matrix(coo))
        assert labels[3] == labels[1] == 1


class TestReachability:
    def test_matches_networkx_descendants(self, random_graph):
        nx = pytest.importorskip("networkx")
        visited = reachable_from(random_graph, 0)
        g = _nx_graph(random_graph, directed=True)
        expected = nx.descendants(g, 0) | {0}
        idx, _ = visited.entries()
        assert set(idx.tolist()) == expected

    def test_source_always_included(self):
        visited = reachable_from(Matrix(COOMatrix.empty((3, 3))), 2)
        idx, _ = visited.entries()
        assert list(idx) == [2]

    def test_directed_asymmetry(self):
        coo = COOMatrix((3, 3), np.array([0]), np.array([1]), np.ones(1))
        graph = Matrix(coo)
        from_0 = reachable_from(graph, 0)
        from_1 = reachable_from(graph, 1)
        assert from_0.nvals == 2
        assert from_1.nvals == 1

    def test_hop_cap(self):
        dense = np.zeros((5, 5))
        for i in range(4):
            dense[i, i + 1] = 1.0
        limited = reachable_from(Matrix.from_dense(dense), 0, max_hops=2)
        assert limited.nvals == 3  # source + 2 hops

    def test_bad_source(self, random_graph):
        with pytest.raises(IndexError):
            reachable_from(random_graph, -1)
