"""Golden tests for the static IR verifier (repro.analysis).

Each deliberately broken graph in the corpus must produce its exact
diagnostic code — the codes are a stable public surface (docs/analysis
.md catalogues them), so these are change-detector tests on purpose.
"""

import warnings

import pytest

from repro.analysis import CODES, DiagnosticReport, DiagnosticWarning
from repro.analysis.passes import (
    lint_workload,
    verify_graph,
    verify_program,
    verify_schedule,
)
from repro.dataflow.compiler import compile_program
from repro.dataflow.graph import DataflowGraph, OpKind, OpNode, TensorKind
from repro.dataflow.program import EWiseInstr, OEIProgram, Operand, OperandKind
from repro.errors import (
    CompileError,
    ConfigError,
    Diagnostic,
    ScheduleError,
    Severity,
)
from repro.oei.validate import replay_schedule, validate_schedule
from repro.workloads.registry import WORKLOADS, lint_registry


def clean_graph() -> DataflowGraph:
    """A minimal legal OEI loop body (PageRank-shaped)."""
    g = DataflowGraph("clean")
    link = g.matrix("L")
    pr = g.vector("pr_next")
    y = g.vector("y")
    scaled = g.vector("scaled")
    new = g.vector("pr_new")
    g.scalar("teleport")
    g.vxm("spmv", pr, link, y, "mul_add")
    g.ewise("damp", "times", [y], scaled, immediate=0.85)
    g.ewise("teleport_add", "plus", [scaled], new, scalar_operand="teleport")
    g.carry(new, pr)
    return g


class TestVerifyGraphClean:
    def test_clean_graph_is_silent(self):
        report = verify_graph(clean_graph())
        assert report.ok
        assert len(report) == 0

    def test_report_format_mentions_subject(self):
        report = verify_graph(clean_graph())
        assert "ok" in report.format()


class TestStructuralPasses:
    def test_sp101_rank_mismatch(self):
        g = DataflowGraph("bad")
        u = g.vector("u")
        v = g.vector("v")
        y = g.vector("y")
        # vxm over two vectors: no matrix operand.
        g.vxm("spmv", u, v, y, "mul_add")
        report = verify_graph(g)
        assert report.has("SP101")

    def test_sp101_reduce_to_vector(self):
        g = DataflowGraph("bad")
        u = g.vector("u")
        out = g.vector("out")
        g.add_op(OpNode("fold", OpKind.REDUCE, (u,), out, op_name="plus"))
        report = verify_graph(g)
        assert report.has("SP101")

    def test_sp102_unknown_semiring(self):
        g = clean_graph()
        g.vxm("spmv2", g.tensors["pr_next"], g.tensors["L"],
              g.vector("y2"), "bogus_semiring")
        assert verify_graph(g).has("SP102")

    def test_sp103_unknown_ewise_op(self):
        g = clean_graph()
        g.ewise("mystery", "frobnicate", [g.tensors["y"]], g.vector("z"))
        assert verify_graph(g).has("SP103")

    def test_sp104_unknown_monoid(self):
        g = clean_graph()
        g.reduce("fold", g.tensors["y"], g.scalar("s"), "bogus_monoid")
        assert verify_graph(g).has("SP104")

    def test_sp105_multiply_produced(self):
        g = clean_graph()
        g.ewise("damp2", "times", [g.tensors["y"]], g.tensors["scaled"],
                immediate=0.5)
        assert verify_graph(g).has("SP105")

    def test_sp106_dangling_tensor_is_warning(self):
        g = clean_graph()
        g.vector("orphan")
        report = verify_graph(g)
        assert report.has("SP106")
        assert report.ok  # warning severity: still compiles

    def test_sp107_intra_iteration_cycle(self):
        g = DataflowGraph("bad")
        link = g.matrix("L")
        a = g.vector("a")
        b = g.vector("b")
        y = g.vector("y")
        g.vxm("spmv", a, link, y, "mul_add")
        g.ewise("fwd", "times", [a], b, immediate=2.0)
        g.ewise("bwd", "times", [b], a, immediate=0.5)
        assert verify_graph(g).has("SP107")

    def test_sp108_carry_from_unproduced(self):
        g = clean_graph()
        g.carry(g.vector("ghost"), g.vector("ghost_next"))
        assert verify_graph(g).has("SP108")

    def test_sp108_carry_kind_mismatch(self):
        g = clean_graph()
        s = g.scalar("alpha_next")
        g.loop_carried[g.tensors["pr_new"].name] = s.name
        assert verify_graph(g).has("SP108")

    def test_sp108_delay_chain_is_legal(self):
        # gmres-style delay chain: v -> prev1 -> prev2; only v is
        # produced, prev1 is legal because it is itself a carry target.
        g = clean_graph()
        prev1 = g.vector("prev1")
        prev2 = g.vector("prev2")
        g.carry(g.tensors["pr_new"], prev1)
        g.carry(prev1, prev2)
        report = verify_graph(g)
        assert not report.has("SP108")

    def test_sp109_operand_overflow(self):
        g = clean_graph()
        g.ewise("fma", "plus", [g.tensors["y"], g.tensors["scaled"]],
                g.vector("z"), scalar_operand="teleport")
        assert verify_graph(g).has("SP109")

    def test_sp110_constant_tensor_written(self):
        g = clean_graph()
        frozen = g.tensor("frozen", TensorKind.VECTOR, constant=True)
        g.ewise("clobber", "times", [g.tensors["y"]], frozen, immediate=1.0)
        assert verify_graph(g).has("SP110")

    def test_sp111_scalar_operand_names_vector(self):
        g = clean_graph()
        g.ewise("bad_scale", "times", [g.tensors["y"]], g.vector("z"),
                scalar_operand="scaled")
        assert verify_graph(g).has("SP111")

    def test_sp112_inconsistent_redeclaration_raises(self):
        g = clean_graph()
        with pytest.raises(CompileError) as exc:
            g.tensor("pr_next", TensorKind.SCALAR)
        assert "SP112" in exc.value.codes

    def test_sp113_duplicate_op_raises(self):
        g = clean_graph()
        with pytest.raises(CompileError) as exc:
            g.ewise("damp", "times", [g.tensors["y"]], g.vector("z"),
                    immediate=2.0)
        assert "SP113" in exc.value.codes

    def test_sp114_undeclared_tensor(self):
        g = clean_graph()
        stray = type(g.tensors["y"])("stray", TensorKind.VECTOR)
        with pytest.raises(CompileError) as exc:
            g.ewise("use_stray", "times", [stray], g.vector("z"),
                    immediate=1.0)
        assert "SP114" in exc.value.codes
        # Bypassing add_op, the verifier still catches it.
        g.ops.append(OpNode("sneak", OpKind.APPLY, (stray,),
                            g.vector("z2"), op_name="identity"))
        assert verify_graph(g).has("SP114")


class TestLegalityPasses:
    def test_sp201_mixed_semirings(self):
        g = clean_graph()
        g.vxm("spmv2", g.tensors["scaled"], g.tensors["L"],
              g.vector("y2"), "min_add")
        assert verify_graph(g).has("SP201")

    def test_sp202_no_contraction(self):
        g = DataflowGraph("pure_ewise")
        a = g.vector("a")
        b = g.vector("b")
        g.ewise("scale", "times", [a], b, immediate=2.0)
        assert verify_graph(g).has("SP202")

    def test_sp203_hidden_reduction_scalar_warns(self):
        g = DataflowGraph("cg_like")
        link = g.matrix("A")
        p = g.vector("p")
        q = g.vector("q")
        scaled = g.vector("scaled")
        alpha = g.scalar("alpha")
        g.vxm("spmv", p, link, q, "mul_add")
        g.reduce("fold", q, alpha, "plus")
        g.ewise("scale", "times", [q], scaled, scalar_operand="alpha")
        g.carry(scaled, p)
        report = verify_graph(g)
        assert report.has("SP203")
        assert report.ok  # warning, not error

    def test_sp204_missing_dual_storage_side(self):
        g = DataflowGraph("single_sided")
        link = g.matrix("L", formats=("csr",))
        pr = g.vector("pr_next")
        y = g.vector("y")
        new = g.vector("pr_new")
        g.vxm("spmv", pr, link, y, "mul_add")
        g.ewise("damp", "times", [y], new, immediate=0.85)
        g.carry(new, pr)
        report = verify_graph(g)
        assert report.has("SP204")
        assert "csc" in str(report.errors[0])

    def test_sp204_dual_storage_is_clean(self):
        g = clean_graph()
        g.matrix_formats["L"] = frozenset({"csc", "csr"})
        assert not verify_graph(g).has("SP204")

    def test_sp205_incompatible_dataflow_pin(self):
        g = DataflowGraph("pinned")
        link = g.matrix("L")
        pr = g.vector("pr_next")
        y = g.vector("y")
        new = g.vector("pr_new")
        g.vxm("spmv", pr, link, y, "mul_add", dataflow="is")
        g.ewise("damp", "times", [y], new, immediate=0.85)
        g.carry(new, pr)
        assert verify_graph(g).has("SP205")

    def test_legality_skipped_on_structural_errors(self):
        # A graph with no contraction AND a structural error reports
        # only the structural code (legality preconditions don't hold).
        g = DataflowGraph("both")
        a = g.vector("a")
        b = g.vector("b")
        g.ewise("x", "times", [a], b, immediate=2.0)
        g.ewise("y", "times", [a], b, immediate=3.0)  # SP105
        report = verify_graph(g)
        assert report.has("SP105")
        assert not report.has("SP202")


class TestVerifyProgram:
    def test_clean_program(self):
        program = compile_program(clean_graph())
        assert verify_program(program).ok

    def test_sp206_bad_instruction(self):
        program = OEIProgram(
            name="bad", semiring_name="mul_add",
            instructions=(EWiseInstr("frobnicate", 0, (Operand(OperandKind.Y),)),),
            result_reg=0, n_registers=1,
        )
        assert verify_program(program).has("SP206")

    def test_sp207_unknown_semiring(self):
        program = OEIProgram(name="bad", semiring_name="bogus")
        assert verify_program(program).has("SP207")

    def test_sp208_read_before_write(self):
        program = OEIProgram(
            name="bad", semiring_name="mul_add",
            instructions=(
                EWiseInstr("plus", 0, (Operand(OperandKind.Y),
                                       Operand(OperandKind.REG, 3))),
            ),
            result_reg=0, n_registers=4,
        )
        assert verify_program(program).has("SP208")

    def test_sp208_result_reg_never_written(self):
        program = OEIProgram(
            name="bad", semiring_name="mul_add",
            instructions=(EWiseInstr("identity", 0, (Operand(OperandKind.Y),)),),
            result_reg=7, n_registers=8,
        )
        assert verify_program(program).has("SP208")


class TestVerifySchedule:
    def test_fig8_skew_is_proven_clean(self):
        assert verify_schedule(1024, 64).ok

    def test_sp301_ewise_lag_zero(self):
        report = verify_schedule(1024, 64, ewise_lag=0)
        assert report.has("SP301")

    def test_sp301_is_lag_equal_to_ewise(self):
        report = verify_schedule(1024, 64, ewise_lag=1, is_lag=1)
        assert report.has("SP301")

    def test_sp302_insufficient_drain(self):
        report = verify_schedule(256, 64, n_steps=4)
        assert report.has("SP302")

    def test_sp306_bad_params(self):
        report = verify_schedule(1024, 0)
        assert report.has("SP306")

    def test_empty_matrix_is_legal(self):
        assert verify_schedule(0, 64).ok


class TestReplaySchedule:
    def test_replay_agrees_with_symbolic_proof(self):
        timeline, report = replay_schedule(300, 64)
        assert report.ok
        assert timeline.os_done == timeline.ewise_done == timeline.is_done

    def test_broken_lags_report_every_violation(self):
        _, report = replay_schedule(300, 64, ewise_lag=0, is_lag=1)
        # One SP304 per offending step, not just the first.
        assert report.codes().count("SP304") > 1

    def test_validate_schedule_raises_with_all_diagnostics(self):
        with pytest.raises(ScheduleError) as exc:
            validate_schedule(300, 64, ewise_lag=0, is_lag=1)
        assert exc.value.codes.count("SP304") > 1

    def test_validate_schedule_clean(self):
        timeline = validate_schedule(300, 64)
        assert timeline.os_done == list(range(5))


class TestCompileVerifyModes:
    def broken(self) -> DataflowGraph:
        g = clean_graph()
        g.vector("orphan")  # SP106 warning
        g.ewise("bad", "frobnicate", [g.tensors["y"]], g.vector("z"))  # SP103
        return g

    def test_default_mode_raises_with_codes(self):
        with pytest.raises(CompileError) as exc:
            compile_program(self.broken())
        assert "SP103" in exc.value.codes

    def test_warn_mode_emits_diagnostic_warnings(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            compile_program(self.broken(), verify="warn")
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DiagnosticWarning)]
        assert any("SP103" in m for m in messages)
        assert any("SP106" in m for m in messages)

    def test_off_mode_is_bit_identical(self):
        checked = compile_program(clean_graph())
        unchecked = compile_program(clean_graph(), verify="off")
        assert checked.instructions == unchecked.instructions
        assert checked.result_reg == unchecked.result_reg
        assert checked.semiring_name == unchecked.semiring_name

    def test_off_mode_skips_broken_graph(self):
        program = compile_program(self.broken(), verify="off")
        assert program.name == "clean"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            compile_program(clean_graph(), verify="loud")


class TestShippedWorkloadsLintClean:
    @pytest.mark.parametrize("name", list(WORKLOADS))
    def test_workload_has_no_error_diagnostics(self, name):
        report = lint_workload(WORKLOADS[name])
        assert report.ok, report.format()

    def test_lint_registry_covers_all(self):
        reports = lint_registry()
        assert set(reports) == set(WORKLOADS)
        assert all(r.ok for r in reports.values())

    def test_cg_and_bgs_warn_about_reduction_scalars(self):
        # The reason cg/bgs lack an OEI path is visible as SP203.
        assert lint_workload(WORKLOADS["cg"]).has("SP203")
        assert lint_workload(WORKLOADS["bgs"]).has("SP203")


class TestDiagnosticPlumbing:
    def test_str_contains_code_severity_location_hint(self):
        d = Diagnostic.error("SP999", "boom", location="graph g", hint="fix it")
        text = str(d)
        assert "SP999" in text and "[error]" in text
        assert "graph g" in text and "fix it" in text

    def test_report_raise_attaches_only_errors(self):
        report = DiagnosticReport(subject="test")
        report.add("SP106", "dangling")
        report.add("SP101", "rank")
        with pytest.raises(CompileError) as exc:
            report.raise_if_errors()
        assert exc.value.codes == ("SP101",)

    def test_every_emitted_code_is_registered(self):
        for code, spec in CODES.items():
            assert spec.code == code
            assert isinstance(spec.severity, Severity)
            assert spec.hint

    def test_docs_catalogue_is_in_sync(self):
        from pathlib import Path

        doc = (Path(__file__).resolve().parent.parent
               / "docs" / "analysis.md").read_text(encoding="utf-8")
        missing = [code for code in CODES if code not in doc]
        assert not missing, f"docs/analysis.md lacks {missing}"


class TestDiagnosticsObserver:
    def test_observer_counts_by_severity_and_code(self):
        from repro.engine.instrumentation import DiagnosticsObserver

        obs = DiagnosticsObserver()
        obs.on_diagnostic(Diagnostic.warning("SP203", "w"))
        obs.on_diagnostic(Diagnostic.warning("SP203", "w2"))
        obs.on_diagnostic(Diagnostic.error("SP101", "e"))
        summary = obs.as_dict()
        assert summary["diagnostics"] == 3.0
        assert summary["diagnostics[warning]"] == 2.0
        assert summary["diagnostics[SP203]"] == 2.0

    def test_context_lint_health_collects_suppressed_warnings(self):
        from repro.experiments.runner import ExperimentContext

        ctx = ExperimentContext(workloads=("cg",), matrices=("gy",))
        ctx.profile("cg", "gy")
        health = ctx.lint_health()
        assert health["diagnostics[SP203]"] >= 2.0
        # Profiling the same workload again must not double-count.
        ctx.profile("cg", "gy")
        assert ctx.lint_health() == health
