"""Unit tests for the abstract interpreter (`repro.analysis.absint`)
and the static-bound building blocks it feeds (`repro.analysis.bounds`,
`repro.oei.reuse` window summaries).

The end-to-end differential oracle against the simulator lives in
``tests/test_absint_oracle.py``; this module tests the pieces in
isolation: the interval domain, the per-op transfer function, the
static OEI decision (including blockers and the SP701/SP704
diagnostics), and the window-byte summaries the traffic bounds rest on.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    abstract_interpret,
    oei_crosscheck,
    static_oei_decision,
)
from repro.analysis.absint import (
    AbstractValue,
    Interval,
    format_conflicts,
    verify_absint,
)
from repro.dataflow.graph import DataflowGraph, TensorKind
from repro.dataflow.oei_detect import find_oei_path
from repro.workloads.registry import get_workload, workload_names


# ----------------------------------------------------------------------
# Interval domain
# ----------------------------------------------------------------------
class TestInterval:
    def test_exact_upto_top(self):
        assert Interval.exact(3) == Interval(3.0, 3.0)
        assert Interval.upto(7) == Interval(0.0, 7.0)
        assert math.isinf(Interval.top().hi)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5.0, 2.0)

    def test_join_is_hull(self):
        assert Interval(1, 3).join(Interval(2, 8)) == Interval(1, 8)
        assert Interval.exact(4).join(Interval.top()) == Interval(0, math.inf)

    def test_clamp(self):
        assert Interval.top().clamp(10) == Interval(0, 10)
        assert Interval(3, 5).clamp(4) == Interval(3, 4)

    def test_contains(self):
        assert 2.0 in Interval(1, 3)
        assert 4.0 not in Interval(1, 3)


class TestAbstractValue:
    def test_join_merges_formats_and_distance(self):
        a = AbstractValue(kind=TensorKind.VECTOR, nnz=Interval.upto(5),
                          reuse_distance=2)
        b = AbstractValue(kind=TensorKind.VECTOR, nnz=Interval.upto(9),
                          reuse_distance=None)
        j = a.join(b)
        assert j.nnz == Interval.upto(9)
        assert j.reuse_distance == 2  # None is "no information", not "far"

    def test_join_rejects_kind_mismatch(self):
        a = AbstractValue(kind=TensorKind.VECTOR)
        b = AbstractValue(kind=TensorKind.SCALAR)
        with pytest.raises(ValueError):
            a.join(b)


# ----------------------------------------------------------------------
# Abstract interpretation over real workload graphs
# ----------------------------------------------------------------------
N = 100.0
MATRIX_NNZ = 421


def _interpret(name: str):
    graph = get_workload(name).build_graph()
    matrix_nnz = {
        t: MATRIX_NNZ
        for t, node in graph.tensors.items()
        if node.kind is TensorKind.MATRIX and node.constant
    }
    return graph, abstract_interpret(graph, n=N, matrix_nnz=matrix_nnz)


@pytest.mark.parametrize("name", workload_names())
def test_every_vector_bounded_by_n(name):
    _, env = _interpret(name)
    for tensor, value in env.items():
        if value.kind is TensorKind.VECTOR:
            assert value.nnz.hi <= N, (tensor, value.nnz)
        elif value.kind is TensorKind.SCALAR:
            assert value.nnz.hi <= 1.0, (tensor, value.nnz)


def test_contraction_output_bounded_by_matrix_nnz():
    graph, env = _interpret("pr")
    spmv_out = next(op.output.name for op in graph.contractions())
    assert env[spmv_out].nnz.hi <= min(N, MATRIX_NNZ)
    assert env[spmv_out].reuse_distance == 0


def test_ewise_chain_increments_reuse_distance():
    # pr: spmv -> damp (x0.85, annihilating "times") -> teleport_add.
    graph, env = _interpret("pr")
    distances = {op.name: env[op.output.name].reuse_distance
                 for op in graph.ewise_ops()}
    assert distances["damp"] == 1
    assert distances["teleport_add"] == 2


def test_reduction_breaks_the_chain():
    graph, env = _interpret("pr")
    # The residual scalar is reduced, never sub-tensor dependent.
    assert env["res"].reuse_distance is None
    assert env["res"].kind is TensorKind.SCALAR


def test_unknown_n_degrades_to_top_not_crash():
    graph = get_workload("pr").build_graph()
    env = abstract_interpret(graph, n=None)
    assert all(math.isinf(v.nnz.hi) for v in env.values()
               if v.kind is TensorKind.VECTOR)


# ----------------------------------------------------------------------
# Static OEI decision vs the dynamic detector (the SP701 contract)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", workload_names())
def test_static_decision_matches_dynamic_detector(name):
    graph = get_workload(name).build_graph()
    decision = static_oei_decision(graph)
    path = find_oei_path(graph)
    assert decision.fusible == (path is not None)
    if path is not None:
        assert decision.src_name == path.src.name
        assert decision.dst_name == path.dst.name
        assert decision.matrix_name == path.matrix_name
        assert decision.iteration_distance == path.iteration_distance
        assert decision.n_ewise_ops == len(path.ewise_ops)
        assert decision.legal, decision.blockers


@pytest.mark.parametrize("name", workload_names())
def test_verify_absint_clean_on_registered_workloads(name):
    graph = get_workload(name).build_graph()
    assert verify_absint(graph).ok


def test_as_dict_round_trips_through_json():
    import json

    decision = static_oei_decision(get_workload("gcn").build_graph())
    doc = json.loads(json.dumps(decision.as_dict()))
    assert doc["fusible"] and doc["legal"]
    assert doc["iteration_distance"] == 1


# ----------------------------------------------------------------------
# Diagnostics: SP701 (injected disagreement) and SP704
# ----------------------------------------------------------------------
def _pinned_graph(formats=("csc",), dataflow="is"):
    """A single-contraction loop whose pair is structurally fusible but
    illegally pinned/declared (the docs/analysis.md worked example)."""
    g = DataflowGraph("bad_pr")
    A = g.matrix("A", formats=formats)
    rank, nxt = g.vector("rank"), g.vector("next")
    contrib = g.vector("contrib")
    g.vxm("spmv", rank, A, contrib, "plus_times", dataflow=dataflow)
    g.ewise("damp", "times", [contrib], nxt, immediate=0.85)
    g.carry(nxt, rank)
    return g


def test_fusible_but_illegal_reports_blockers():
    decision = static_oei_decision(_pinned_graph())
    assert decision.fusible and not decision.legal
    assert any("lacks" in b for b in decision.blockers)
    assert any("pinned" in b for b in decision.blockers)


def test_sp704_fires_on_missing_required_side():
    report = format_conflicts(_pinned_graph(formats=("csc",), dataflow="is"))
    assert report.has("SP704")
    assert not report.ok


def test_sp704_silent_when_side_is_declared():
    report = format_conflicts(_pinned_graph(formats=("csc", "csr"),
                                            dataflow="is"))
    assert report.ok


def test_sp701_fires_on_injected_disagreement():
    graph = get_workload("pr").build_graph()
    # The dynamic side "found nothing" while the static side fuses.
    report = oei_crosscheck(graph, dynamic_path=None)
    assert report.has("SP701")
    assert not report.ok


def test_sp701_silent_when_detectors_agree():
    graph = get_workload("pr").build_graph()
    assert oei_crosscheck(graph).ok
    # And on a genuinely unfusible graph (cg) with no path injected.
    assert oei_crosscheck(get_workload("cg").build_graph()).ok


def test_compiler_analysis_carries_static_decision():
    from repro.dataflow.compiler import analyze

    analysis = analyze(get_workload("pr").build_graph())
    assert analysis.static_oei is not None
    assert analysis.static_oei.fusible
    assert not analyze(get_workload("cg").build_graph()).static_oei.fusible


# ----------------------------------------------------------------------
# Window-byte summaries (the csr_reload / peak-occupancy bounds)
# ----------------------------------------------------------------------
def test_window_summaries_against_brute_force():
    from repro.arch.loaders import LoadPlan
    from repro.experiments.runner import ExperimentContext
    from repro.oei.reuse import window_entry_bytes, window_peak_bytes

    prep = ExperimentContext(matrices=("gy",)).prepared("gy")
    plan = LoadPlan.from_matrix(prep, 32)

    entry = sum(c for counts in plan.enter_counts for c in counts.values())
    assert entry > 0  # gy has real cross-step reuse to admit
    assert window_entry_bytes(plan) == entry * plan.element_bytes

    # Brute-force the no-eviction occupancy: an element admitted at
    # load step l with scatter step r is resident for every sample
    # s in [l, r] (the buffer samples after admit, before release).
    peak = 0
    for s in range(plan.n_steps):
        occupancy = sum(
            count
            for l, counts in enumerate(plan.enter_counts)
            for r, count in counts.items()
            if l <= s <= r
        )
        peak = max(peak, occupancy)
    assert window_peak_bytes(plan) == peak * plan.element_bytes
