"""Tests for the banked DRAM model and its simulator integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import GPU_GDDR6X, SparsepipeConfig
from repro.arch.dram import BankedDRAM, DRAMGeometry
from repro.arch.memory import MemoryController
from repro.arch.profile import WorkloadProfile
from repro.arch.simulator import SparsepipeSimulator
from repro.matrices import bipartite_block, road_network
from tests.conftest import random_coo


@pytest.fixture
def dram():
    return BankedDRAM(GPU_GDDR6X, clock_ghz=1.0)


class TestBankedDRAM:
    def test_streaming_reaches_near_peak(self, dram):
        # Row-sized bursts: nearly pure bus time.
        assert dram.efficiency(avg_burst_bytes=2048) > 0.9

    def test_scattered_bursts_lose_bandwidth(self, dram):
        assert dram.efficiency(avg_burst_bytes=12) < 0.5

    def test_efficiency_monotone_in_burst_size(self, dram):
        sizes = [16, 64, 256, 1024, 4096]
        effs = [dram.efficiency(s) for s in sizes]
        assert all(b >= a - 1e-9 for a, b in zip(effs, effs[1:]))

    def test_zero_bytes_free(self, dram):
        assert dram.cycles(0.0, 64) == 0.0

    def test_negative_bytes_rejected(self, dram):
        with pytest.raises(ValueError):
            dram.cycles(-1.0, 64)

    def test_granule_rounding_penalizes_tiny_bursts(self, dram):
        # A 4-byte burst still moves the 32-byte granule.
        four = dram.cycles(4_000.0, 4)
        thirty_two = dram.cycles(4_000.0, 32)
        assert four > thirty_two * 0.99

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DRAMGeometry(channels=0)

    def test_more_banks_hide_more_activations(self):
        few = BankedDRAM(GPU_GDDR6X, 1.0, DRAMGeometry(banks_per_channel=2))
        many = BankedDRAM(GPU_GDDR6X, 1.0, DRAMGeometry(banks_per_channel=32))
        assert many.cycles(1e6, 64) <= few.cycles(1e6, 64)


class TestMemoryControllerIntegration:
    def test_flat_ignores_hints(self):
        cfg = SparsepipeConfig(detailed_dram=False)
        mem = MemoryController(cfg, burst_hints={"csc": 8.0})
        flat = mem.demand_cycles({"csc": 1000.0})
        assert flat == pytest.approx(mem.cycles_for(1000.0))

    def test_detailed_charges_scatter_more(self):
        cfg = SparsepipeConfig(detailed_dram=True)
        mem = MemoryController(
            cfg, burst_hints={"csc": 8192.0, "csr_reload": 16.0}
        )
        streamed = mem.demand_cycles({"csc": 100_000.0})
        scattered = mem.demand_cycles({"csr_reload": 100_000.0})
        assert scattered > 1.5 * streamed

    def test_detailed_default_hint_is_streaming(self):
        cfg = SparsepipeConfig(detailed_dram=True)
        mem = MemoryController(cfg)
        assert mem.demand_cycles({"vector": 10_000.0}) < mem.cycles_for(10_000.0) * 1.5


class TestSimulatorWithDetailedDRAM:
    def _profile(self):
        return WorkloadProfile(
            name="pr", semiring_name="mul_add", has_oei=True,
            n_iterations=6, path_ewise_ops=2,
        )

    def test_detailed_never_faster_than_flat(self):
        """The banked model's best case is the flat streaming rate;
        activation stalls can only add cycles."""
        coo = bipartite_block(500, 5000, split=0.45, corner_share=0.9, seed=8)
        flat = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=16, buffer_bytes=8 * 1024)
        ).run(self._profile(), coo)
        detailed = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=16, buffer_bytes=8 * 1024,
                             detailed_dram=True)
        ).run(self._profile(), coo)
        assert flat.oom_evicted_bytes > 0  # ping-pong actually happens
        assert detailed.cycles >= flat.cycles * 0.999

    def test_short_row_reloads_pay_activation_stalls(self):
        """When reload bursts are shorter than the bank array can hide,
        the banked model charges real extra cycles — the wi ping-pong
        penalty of Section VI-A."""
        from repro.arch.loaders import LoadPlan

        # Extremely short rows: ~2 nnz per row -> ~25-byte bursts.
        coo = bipartite_block(4000, 8000, split=0.45, corner_share=0.9, seed=8)
        plan = LoadPlan.from_matrix(coo, 16)
        assert plan.matrix_stream_bytes / plan.n < 64
        flat = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=16, buffer_bytes=8 * 1024)
        ).run(self._profile(), coo)
        detailed = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=16, buffer_bytes=8 * 1024,
                             detailed_dram=True)
        ).run(self._profile(), coo)
        assert detailed.oom_evicted_bytes > 0
        assert detailed.cycles > flat.cycles

    def test_detailed_close_to_flat_on_streaming(self):
        """A banded road network streams contiguously: both models
        should agree within ~25%."""
        coo = road_network(2000, 5000, seed=9)
        flat = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=64)
        ).run(self._profile(), coo)
        detailed = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=64, detailed_dram=True)
        ).run(self._profile(), coo)
        assert detailed.cycles == pytest.approx(flat.cycles, rel=0.25)

    def test_traffic_volume_independent_of_dram_model(self):
        coo = random_coo(10, n=60, density=0.2)
        flat = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=16)
        ).run(self._profile(), coo)
        detailed = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=16, detailed_dram=True)
        ).run(self._profile(), coo)
        assert detailed.traffic.total_bytes == pytest.approx(
            flat.traffic.total_bytes, rel=0.05
        )


@settings(max_examples=40, deadline=None)
@given(
    st.floats(1.0, 1e7),
    st.floats(1.0, 1e5),
)
def test_property_banked_cycles_at_least_bus_time(n_bytes, burst):
    dram = BankedDRAM(GPU_GDDR6X, 1.0)
    cycles = dram.cycles(n_bytes, burst)
    assert cycles >= n_bytes / dram.bytes_per_cycle - 1e-9
