"""Correctness tests for the 11 Table-III workloads against independent
references (dense numpy, scipy, networkx)."""

import numpy as np
import pytest

from repro.graphblas import Matrix
from repro.matrices import erdos_renyi, grid_2d, road_network
from repro.workloads import WORKLOADS, get_workload, workload_names
from repro.workloads.pagerank import normalize_columns_out
from repro.workloads.solvers import spd_system


@pytest.fixture(scope="module")
def graph() -> Matrix:
    return Matrix(erdos_renyi(80, 600, seed=11))


@pytest.fixture(scope="module")
def sparse_graph() -> Matrix:
    return Matrix(road_network(150, 400, seed=12))


class TestRegistry:
    def test_table_iii_order(self):
        assert workload_names() == [
            "pr", "kcore", "bfs", "sssp", "kpp", "knn",
            "label", "gcn", "gmres", "cg", "bgs",
        ]

    def test_unknown_workload(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            get_workload("nope")

    def test_oei_classification_matches_table_iii(self):
        for name in ("pr", "kcore", "bfs", "sssp", "kpp", "knn", "label", "gcn", "gmres"):
            assert WORKLOADS[name].program().has_oei, name
        for name in ("cg", "bgs"):
            assert not WORKLOADS[name].program().has_oei, name

    def test_semirings_match_table_iii(self):
        expected = {
            "pr": "mul_add", "kcore": "mul_add", "bfs": "and_or",
            "sssp": "min_add", "kpp": "aril_add", "knn": "and_or",
            "label": "mul_add", "gcn": "mul_add", "gmres": "mul_add",
            "cg": "mul_add", "bgs": "mul_add",
        }
        for name, semiring in expected.items():
            assert WORKLOADS[name].program().semiring_name == semiring, name

    def test_profiles_buildable_for_all(self, graph):
        for name in workload_names():
            prof = WORKLOADS[name].profile(graph)
            assert prof.n_iterations >= 1, name


class TestPageRank:
    def test_matches_dense_power_iteration(self, graph):
        result = get_workload("pr").run_functional(graph)
        # Dense reference with the same damping and dangling handling.
        n = graph.nrows
        link = normalize_columns_out(graph).to_dense()
        dangling = graph.row_degrees() == 0
        pr = np.full(n, 1.0 / n)
        for _ in range(result.n_iterations):
            teleport = 0.15 / n + 0.85 * pr[dangling].sum() / n
            pr = 0.85 * (pr @ link) + teleport
        np.testing.assert_allclose(result.output, pr, rtol=1e-8)

    def test_ranks_sum_to_one(self, graph):
        result = get_workload("pr").run_functional(graph)
        assert np.isclose(result.output.sum(), 1.0, atol=1e-6)

    def test_converges_within_cap(self, graph):
        result = get_workload("pr").run_functional(graph)
        assert result.n_iterations < get_workload("pr").max_iterations


class TestBFS:
    def test_levels_match_reference(self, sparse_graph):
        nx = pytest.importorskip("networkx")
        result = get_workload("bfs").run_functional(sparse_graph, source=0)
        coo = sparse_graph.coo
        g = nx.DiGraph()
        g.add_nodes_from(range(sparse_graph.nrows))
        g.add_edges_from(zip(coo.rows.tolist(), coo.cols.tolist()))
        expected = nx.single_source_shortest_path_length(g, 0)
        for v in range(sparse_graph.nrows):
            ref = expected.get(v, -1)
            if ref >= get_workload("bfs").max_iterations:
                continue  # beyond the iteration cap
            assert result.output[v] == ref, f"vertex {v}"

    def test_activity_is_frontier_fraction(self, graph):
        result = get_workload("bfs").run_functional(graph, source=3)
        assert len(result.activity) == result.n_iterations
        assert all(0.0 <= a <= 1.0 for a in result.activity)

    def test_bad_source(self, graph):
        with pytest.raises(ValueError):
            get_workload("bfs").run_functional(graph, source=10**6)


class TestSSSP:
    def test_matches_scipy_bellman_ford(self, graph):
        sp = pytest.importorskip("scipy.sparse")
        csgraph = pytest.importorskip("scipy.sparse.csgraph")
        result = get_workload("sssp").run_functional(graph, source=0)
        coo = graph.coo
        mat = sp.coo_matrix(
            (coo.vals, (coo.rows, coo.cols)), shape=graph.shape
        )
        ref = np.asarray(csgraph.bellman_ford(mat, indices=0, directed=True)).ravel()
        converged = result.n_iterations < get_workload("sssp").max_iterations
        if converged:
            np.testing.assert_allclose(result.output, ref)
        else:
            reached = np.isfinite(result.output)
            np.testing.assert_array_less(
                ref[reached] - 1e-9, result.output[reached] + 1e-9
            )

    def test_source_distance_zero(self, graph):
        result = get_workload("sssp").run_functional(graph, source=5)
        assert result.output[5] == 0.0

    def test_distances_monotone_triangle(self, graph):
        # Every edge (u, v) must satisfy d(v) <= d(u) + w(u, v) at
        # convergence.
        result = get_workload("sssp").run_functional(graph, source=0)
        if result.n_iterations >= get_workload("sssp").max_iterations:
            pytest.skip("did not converge within the cap")
        coo = graph.coo
        d = result.output
        finite = np.isfinite(d[coo.rows])
        assert np.all(
            d[coo.cols[finite]] <= d[coo.rows[finite]] + coo.vals[finite] + 1e-9
        )


class TestKCore:
    def test_matches_networkx(self, graph):
        nx = pytest.importorskip("networkx")
        k = 3
        workload = get_workload("kcore")
        result = workload.run_functional_pattern(graph, k=k)
        coo = graph.coo
        g = nx.DiGraph()
        g.add_nodes_from(range(graph.nrows))
        g.add_edges_from(zip(coo.rows.tolist(), coo.cols.tolist()))
        # Our peel counts in-neighbors (vxm = column reduction).
        alive = set(np.flatnonzero(result.output).tolist())
        expected = set(range(graph.nrows))
        changed = True
        while changed:
            changed = False
            for v in list(expected):
                indeg = sum(1 for u, _ in g.in_edges(v) if u in expected)
                if indeg < k:
                    expected.discard(v)
                    changed = True
        assert alive == expected

    def test_rejects_bad_k(self):
        from repro.workloads.kcore import KCore

        with pytest.raises(ValueError):
            KCore(k=0)

    def test_activity_non_increasing(self, graph):
        result = get_workload("kcore").run_functional(graph, k=4)
        assert all(
            b <= a + 1e-12 for a, b in zip(result.activity, result.activity[1:])
        )


class TestKNNAndKPP:
    def test_knn_reach_grows_monotonically(self, graph):
        result = get_workload("knn").run_functional(graph, seeds=3)
        assert all(
            b >= a for a, b in zip(result.activity, result.activity[1:])
        )

    def test_knn_output_is_binary(self, graph):
        result = get_workload("knn").run_functional(graph)
        assert set(np.unique(result.output)).issubset({0.0, 1.0})

    def test_kpp_selects_requested_centers(self, graph):
        result = get_workload("kpp").run_functional(graph, n_centers=5)
        centers = result.extras["centers"]
        assert len(centers) == 5
        assert len(set(centers)) == 5  # centers have distance 0

    def test_kpp_center_distances_zero(self, graph):
        result = get_workload("kpp").run_functional(graph, n_centers=4)
        for c in result.extras["centers"]:
            assert result.output[c] == 0.0

    def test_kpp_distances_nonnegative(self, graph):
        result = get_workload("kpp").run_functional(graph)
        assert np.all(result.output >= 0)


class TestLabelAndGCN:
    def test_label_propagation_converges_on_grid(self):
        grid = Matrix(grid_2d(8))
        result = get_workload("label").run_functional(grid, n_rounds=30)
        assert result.n_iterations >= 1
        assert np.all(np.isfinite(result.output))

    def test_label_smoothing_reduces_variance(self, graph):
        result = get_workload("label").run_functional(graph, n_rounds=15)
        # Weighted averaging cannot expand the label range.
        assert result.output.min() >= -1e-9
        assert result.output.max() <= 1.0 + 1e-9

    def test_gcn_output_shape_and_relu(self, graph):
        from repro.workloads.gcn import GCN

        gcn = GCN(feature_dim=8, n_layers=3)
        result = gcn.run_functional(graph)
        assert result.output.shape == (graph.nrows, 8)
        assert np.all(result.output >= 0.0)
        assert result.n_iterations == 3

    def test_gcn_matches_dense_reference(self, graph):
        from repro.workloads.gcn import GCN

        gcn = GCN(feature_dim=4, n_layers=2)
        result = gcn.run_functional(graph, seed=7)
        norm = GCN._normalized(graph).to_dense()
        h = result.extras["features"]
        for w in result.extras["weights"]:
            h = np.maximum((norm @ h) @ w, 0.0)
        np.testing.assert_allclose(result.output, h, rtol=1e-9)

    def test_gcn_profile_carries_feature_dim(self, graph):
        from repro.workloads.gcn import GCN

        prof = GCN(feature_dim=8, n_layers=2).profile(graph)
        assert prof.feature_dim == 8
        assert prof.extra_ops_per_iteration > 0


class TestSolvers:
    @pytest.mark.parametrize("name", ["cg", "bgs", "gmres"])
    def test_solves_spd_system(self, graph, name):
        result = get_workload(name).run_functional(graph)
        assert result.extras["residual"] < 1e-5, name

    def test_spd_system_is_symmetric_positive(self, graph):
        m = spd_system(graph).to_dense()
        np.testing.assert_allclose(m, m.T, atol=1e-12)
        eigvals = np.linalg.eigvalsh(m)
        assert eigvals.min() > 0

    def test_cg_matches_numpy_solve(self, graph):
        result = get_workload("cg").run_functional(graph, seed=3)
        m = spd_system(graph).to_dense()
        expected = np.linalg.solve(m, result.extras["b"])
        np.testing.assert_allclose(result.output, expected, rtol=1e-4, atol=1e-6)

    def test_gmres_restart_validation(self):
        from repro.workloads.solvers import GMRES

        with pytest.raises(ValueError):
            GMRES(restart=0)


class TestKCoreDecompose:
    def test_core_numbers_consistent_with_per_k_peel(self, graph):
        workload = get_workload("kcore")
        decomposition = workload.decompose(graph, max_k=6)
        core = decomposition.output
        for k in (1, 2, 3):
            alive = workload.run_functional_pattern(graph, k=k).output > 0
            np.testing.assert_array_equal(core >= k, alive)

    def test_core_numbers_bounded_by_in_degree(self, graph):
        core = get_workload("kcore").decompose(graph, max_k=8).output
        indeg = graph.col_degrees()
        assert np.all(core <= indeg)

    def test_max_core_reported(self, graph):
        result = get_workload("kcore").decompose(graph, max_k=8)
        assert result.extras["max_core"] == int(result.output.max())

    def test_empty_graph_all_zero(self):
        from repro.formats.coo import COOMatrix

        empty = Matrix(COOMatrix.empty((5, 5)))
        result = get_workload("kcore").decompose(empty, max_k=3)
        assert np.all(result.output == 0)


class TestWorkloadBase:
    def test_profile_requires_matrix_or_iterations(self):
        with pytest.raises(ValueError, match="needs a matrix"):
            get_workload("pr").profile()

    def test_profile_with_explicit_iterations_skips_functional(self):
        prof = get_workload("pr").profile(n_iterations=9)
        assert prof.n_iterations == 9
        assert prof.activity == ()

    def test_program_is_cached(self):
        w = get_workload("sssp")
        assert w.program() is w.program()
