"""Tests for the OEI legality validators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.oei import assert_oei_matches_reference, validate_schedule
from repro.dataflow.program import EWiseInstr, OEIProgram, Operand, OperandKind


def _program(result_bias: float = 0.0) -> OEIProgram:
    """y * 0.9 + bias — a PageRank-shaped stream."""
    return OEIProgram(
        name="t",
        semiring_name="mul_add",
        instructions=(
            EWiseInstr("times", 0, (Operand(OperandKind.Y), Operand(OperandKind.CONST, 0.9))),
            EWiseInstr("plus", 1, (Operand(OperandKind.REG, 0), Operand(OperandKind.CONST, result_bias))),
        ),
        result_reg=1,
        n_registers=2,
        has_oei=True,
    )


class TestValidateSchedule:
    def test_valid_for_typical_sizes(self):
        timeline = validate_schedule(100, 16)
        assert timeline.os_done == list(range(7))
        assert timeline.is_done == list(range(7))

    def test_valid_for_single_subtensor(self):
        timeline = validate_schedule(5, 16)
        assert timeline.os_done == [0]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 500), st.integers(1, 64))
    def test_property_schedule_always_legal(self, n, t):
        validate_schedule(n, t)  # must never raise

    def test_zero_columns(self):
        timeline = validate_schedule(0, 8)
        assert timeline.os_done == []


class TestNumericValidation:
    def _matrices(self, seed=0, n=30):
        gen = np.random.default_rng(seed)
        dense = (gen.random((n, n)) < 0.2) * gen.uniform(0.1, 1, (n, n))
        coo = COOMatrix.from_dense(dense)
        return CSCMatrix.from_coo(coo), CSRMatrix.from_coo(coo)

    def test_passes_for_correct_program(self):
        csc, csr = self._matrices()
        trace = assert_oei_matches_reference(
            csc, csr, _program(0.01), np.full(30, 1.0 / 30), 5
        )
        assert trace.n_iterations == 5

    def test_raises_on_non_oei_program(self):
        csc, csr = self._matrices()
        program = OEIProgram(name="t", semiring_name="mul_add", has_oei=False)
        with pytest.raises(ScheduleError):
            assert_oei_matches_reference(csc, csr, program, np.zeros(30), 2)

    def test_detects_divergence(self, monkeypatch):
        """Corrupt the pair executor and confirm the validator sees it."""
        import repro.oei.validate as validate_mod

        csc, csr = self._matrices()
        real = validate_mod.run_oei_pairs

        def corrupted(*args, **kwargs):
            trace = real(*args, **kwargs)
            trace.y_history[1] = trace.y_history[1] + 1.0
            return trace

        monkeypatch.setattr(validate_mod, "run_oei_pairs", corrupted)
        with pytest.raises(ScheduleError, match="iteration 1"):
            validate_mod.assert_oei_matches_reference(
                csc, csr, _program(), np.full(30, 0.5), 4
            )

    def test_with_scalars_and_aux(self):
        csc, csr = self._matrices(seed=3)
        program = OEIProgram(
            name="t",
            semiring_name="min_add",
            instructions=(
                EWiseInstr("min", 0, (Operand(OperandKind.Y), Operand(OperandKind.AUX, "d"))),
            ),
            result_reg=0,
            aux_vectors=("d",),
            n_registers=1,
            has_oei=True,
        )
        x0 = np.full(30, np.inf)
        x0[0] = 0.0
        trace = assert_oei_matches_reference(
            csc, csr, program, x0, 6,
            aux_provider=lambda k, x: {"d": x},
            subtensor_cols=7,
        )
        # Bellman-Ford shape: distances are non-increasing.
        for a, b in zip(trace.x_history, trace.x_history[1:]):
            assert np.all(b <= a + 1e-12)
