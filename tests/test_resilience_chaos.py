"""Chaos suite: run real sweeps under an armed :class:`FaultPlan` and
assert the resilience layer delivers the acceptance criteria — the
sweep completes, results are bit-identical to a fault-free run, and
every injected fault is visible as an SP6xx record in the manifests.

The sweep and service classes are parametrized over every scheduler
backend (``inprocess`` / ``localpool`` / ``spool``): the same fault
plan must be survived identically no matter which substrate runs the
points. What differs per backend is only the *degradation* signature —
the in-process backend has no workers to lose, so it never records
SP601 — captured in :data:`DEGRADE`.

``REPRO_CHAOS_SEED`` overrides the plan seed (default 1234),
``REPRO_CHAOS_DIR`` pins the cache/quarantine directory so CI can
upload it as an artifact when the suite fails, and
``REPRO_SCHED_BACKENDS`` (comma-separated) restricts the backend
matrix; all default to hermetic per-test values.
"""

import os
from pathlib import Path

import pytest

from repro.errors import FormatError, InjectedFault
from repro.experiments.runner import ExperimentContext
from repro.formats import read_matrix_market
from repro.obs.capture import capture_run
from repro.resilience import Fault, FaultPlan, activate, drain_fired

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1234"))

ALL_BACKENDS = ("inprocess", "localpool", "spool")
BACKENDS = tuple(
    b for b in ALL_BACKENDS
    if b in os.environ.get(
        "REPRO_SCHED_BACKENDS", ",".join(ALL_BACKENDS)).split(",")
)

#: Degradation codes each backend is *expected* to surface under
#: worker death at rate 1.0 — the in-process backend has no worker
#: processes to lose, so the worker_death site never fires for it.
DEGRADE = {
    "inprocess": frozenset(),
    "localpool": frozenset({"SP601"}),
    "spool": frozenset({"SP601"}),
}

#: 2 archs x 2 workloads on one matrix: enough distinct fault keys for
#: every site, small enough to keep the suite fast.
POINTS = [
    ("sparsepipe", "pr", "gy"),
    ("ideal", "pr", "gy"),
    ("sparsepipe", "kcore", "gy"),
    ("ideal", "kcore", "gy"),
]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def chaos_dir(tmp_path):
    override = os.environ.get("REPRO_CHAOS_DIR")
    if override:
        path = Path(override) / "chaos"
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path


def _plan():
    return FaultPlan(seed=SEED, faults={
        "parallel.worker": Fault(kind="worker_death", rate=1.0),
        "cache.get": Fault(kind="corrupt_file", rate=1.0),
        "engine.run": Fault(kind="raise", rate=1.0),
    })


class TestChaosSweep:
    def test_sweep_survives_every_fault_site(self, chaos_dir, backend):
        cache_dir = chaos_dir / f"cache-{backend}"

        # Fault-free baseline; also populates the disk cache so the
        # chaos run exercises the cache.get corruption site.
        clean = ExperimentContext(cache_dir=cache_dir)
        baseline = clean.simulate_many(POINTS)
        assert all(m.status == "ok" for m in clean.manifests.values())

        chaotic = ExperimentContext(
            cache_dir=cache_dir, max_workers=2, on_error="retry",
            scheduler=backend)
        with activate(_plan()):
            results = chaotic.simulate_many(POINTS)
        fired = drain_fired()

        # Acceptance: the sweep completes, bit-identical to fault-free.
        assert results == baseline

        # Every injected fault is visible: SP607 fire records in this
        # process (cache corruption per entry + one transient raise per
        # point retried in-process after the pool broke)...
        assert all(d.code == "SP607" for d in fired)
        sites = {d.location.split("[")[0] for d in fired}
        assert {"cache.get", "engine.run"} <= sites

        # ...quarantined corpses on disk...
        quarantined = list(cache_dir.glob("*/quarantine/*.json"))
        assert len(quarantined) == len(POINTS)

        # ...and SP6xx provenance in every point's manifest. Which
        # degradation codes appear is the only backend-specific part.
        codes = set()
        for point in POINTS:
            manifest = chaotic.manifest(*point)
            assert manifest.status == "retried"
            codes.update(f.get("code") for f in manifest.faults)
        assert {"SP602", "SP604"} | DEGRADE[backend] <= codes

        # Sweep-wide counters account the same events.
        assert chaotic.metrics.counter("cache.quarantined").value == len(POINTS)
        pool_breaks = chaotic.metrics.counter("resilience.pool_breaks").value
        if DEGRADE[backend]:
            assert pool_breaks >= 1
        else:
            assert pool_breaks == 0
        assert chaotic.metrics.counter("resilience.retries").value >= len(POINTS)

    def test_chaos_leaves_identical_digests(self, chaos_dir, backend):
        # Surviving faults is unstable provenance: run identity (the
        # manifest digest) must match an undisturbed context's.
        clean = ExperimentContext()
        clean.simulate_many(POINTS[:2])
        chaotic = ExperimentContext(
            max_workers=2, on_error="retry", scheduler=backend)
        with activate(_plan()):
            chaotic.simulate_many(POINTS[:2])
        for point in POINTS[:2]:
            assert chaotic.manifest(*point).digest() == \
                clean.manifest(*point).digest()

    def test_repeat_run_is_deterministic(self, tmp_path, backend):
        # Same seed, same faults, same outcome — chaos runs reproduce.
        outcomes = []
        for attempt in ("a", "b"):
            ctx = ExperimentContext(
                cache_dir=tmp_path / attempt, max_workers=2, on_error="retry")
            ctx.simulate_many(POINTS[:2])  # populate cache
            chaotic = ExperimentContext(
                cache_dir=tmp_path / attempt, max_workers=2,
                on_error="retry", scheduler=backend)
            with activate(_plan()):
                results = chaotic.simulate_many(POINTS[:2])
            statuses = tuple(
                chaotic.manifest(*p).status for p in POINTS[:2])
            outcomes.append((results, statuses))
        assert outcomes[0] == outcomes[1]


class TestChaosService:
    """The SP6xx fault plan against a live, in-process JobQueue.

    The acceptance bar matches the sweep suite's: under worker death,
    read-side cache corruption, and transient engine raises — all at
    rate 1.0 — every submitted job still completes, with results
    bit-identical to a fault-free service, and the faults visible as
    SP6xx provenance in the served manifests.
    """

    def _serve(self, cache_dir, plan=None, scheduler=None):
        import asyncio

        from repro.service import JobQueue

        async def main():
            context = ExperimentContext(
                cache_dir=cache_dir, max_workers=2, on_error="retry",
                scheduler=scheduler)
            queue = JobQueue(context=context, scheduler=scheduler)
            await queue.start()
            if plan is not None:
                with activate(plan):
                    job_ids = [await queue.submit(p) for p in POINTS]
                    jobs = [await queue.result(j, timeout=300)
                            for j in job_ids]
            else:
                job_ids = [await queue.submit(p) for p in POINTS]
                jobs = [await queue.result(j, timeout=300)
                        for j in job_ids]
            await queue.close()
            return queue, jobs

        return asyncio.run(main())

    def test_service_survives_every_fault_site(self, chaos_dir, backend):
        cache_dir = chaos_dir / f"service-cache-{backend}"

        # Fault-free baseline service; populates the shared store so
        # the chaos pass exercises the cache.get corruption site.
        _clean_queue, baseline = self._serve(cache_dir)
        assert all(job.status == "done" for job in baseline)

        queue, jobs = self._serve(cache_dir, plan=_plan(),
                                  scheduler=backend)
        fired = drain_fired()

        # Acceptance: every job lands, bit-identical to fault-free.
        assert [job.status for job in jobs] == ["done"] * len(POINTS)
        assert [job.result for job in jobs] == \
            [job.result for job in baseline]

        # The faults really fired, at the expected sites...
        assert all(d.code == "SP607" for d in fired)
        sites = {d.location.split("[")[0] for d in fired}
        assert {"cache.get", "engine.run"} <= sites

        # ...each job's served manifest carries the SP6xx provenance
        # (status degraded to "retried", never silently "ok")...
        codes = set()
        for job in jobs:
            assert job.manifest.status == "retried"
            codes.update(f.get("code") for f in job.manifest.faults)
        assert {"SP602", "SP604"} | DEGRADE[backend] <= codes

        # ...the per-shard quarantine caught every corrupted read...
        quarantined = list(cache_dir.glob("*/quarantine/*.json"))
        assert len(quarantined) == len(POINTS)

        # ...and the service + engine books agree on what happened.
        metrics = queue.context.metrics
        assert metrics.counter("cache.quarantined").value == len(POINTS)
        assert metrics.counter("resilience.retries").value >= len(POINTS)
        assert queue.metrics.value("service.jobs_completed") == len(POINTS)
        assert queue.metrics.value("service.jobs_failed") == 0

    def test_chaos_service_digests_match_clean_service(self, tmp_path,
                                                       backend):
        # Fault survival is unstable provenance: run identity of a
        # service answer must not depend on the chaos it survived.
        _q1, clean = self._serve(tmp_path / "clean")
        _q2, chaotic = self._serve(tmp_path / "chaotic", plan=_plan(),
                                   scheduler=backend)
        drain_fired()
        for a, b in zip(clean, chaotic):
            assert a.manifest.digest() == b.manifest.digest()

    def test_chaos_service_honors_seed_env(self, tmp_path, backend):
        # REPRO_CHAOS_SEED reaches the service plan: same seed, same
        # jobs, same outcome — byte-identical served documents.
        outcomes = []
        for attempt in ("a", "b"):
            queue, jobs = self._serve(tmp_path / attempt,
                                      plan=_plan(), scheduler=backend)
            drain_fired()
            outcomes.append([
                {k: v for k, v in job.to_doc().items()
                 if k != "manifest"}  # manifests differ in wall time
                for job in jobs
            ])
        assert outcomes[0] == outcomes[1]


class TestChaosIngest:
    MTX = (
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 3\n"
        "1 1 1.0\n"
        "2 2 2.0\n"
        "3 3 3.0\n"
    )

    def test_corrupted_entry_line_fails_with_line_number(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(self.MTX)
        plan = FaultPlan(seed=SEED, faults={
            "ingest.entry": Fault(kind="corrupt_text", rate=0.0,
                                  keys=("4",), payload="1 1 bogus extra")})
        with activate(plan):
            with pytest.raises(FormatError, match="line 4") as err:
                read_matrix_market(path)
        assert "SP605" in err.value.codes
        # The fault fired exactly where the plan said.
        fired = drain_fired()
        assert [d.location for d in fired] == ["ingest.entry[4]"]

    def test_clean_file_reads_under_inactive_site(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(self.MTX)
        plan = FaultPlan(seed=SEED, faults={
            "ingest.entry": Fault(kind="corrupt_text", rate=0.0)})
        with activate(plan):
            coo = read_matrix_market(path)
        assert coo.shape == (3, 3) and coo.nnz == 3
        assert drain_fired() == []


class TestChaosObservedRun:
    """Observed runs route through ``run_engine`` too, so the
    ``engine.run`` site covers them — ``capture_run`` (the trace CLI's
    substrate) is not a side door around the chaos harness."""

    def test_capture_run_hits_engine_run_site(self):
        plan = FaultPlan(seed=SEED, faults={
            "engine.run": Fault(kind="raise", rate=1.0)})
        with activate(plan):
            with pytest.raises(InjectedFault):
                capture_run("pr", matrix="gy")
        fired = drain_fired()
        sites = {d.location.split("[")[0] for d in fired}
        assert "engine.run" in sites
