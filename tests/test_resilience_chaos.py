"""Chaos suite: run real sweeps under an armed :class:`FaultPlan` and
assert the resilience layer delivers the acceptance criteria — the
sweep completes, results are bit-identical to a fault-free run, and
every injected fault is visible as an SP6xx record in the manifests.

``REPRO_CHAOS_SEED`` overrides the plan seed (default 1234) and
``REPRO_CHAOS_DIR`` pins the cache/quarantine directory so CI can
upload it as an artifact when the suite fails; both default to
hermetic per-test values.
"""

import os
from pathlib import Path

import pytest

from repro.errors import FormatError
from repro.experiments.runner import ExperimentContext
from repro.formats import read_matrix_market
from repro.resilience import Fault, FaultPlan, activate, drain_fired

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1234"))

#: 2 archs x 2 workloads on one matrix: enough distinct fault keys for
#: every site, small enough to keep the suite fast.
POINTS = [
    ("sparsepipe", "pr", "gy"),
    ("ideal", "pr", "gy"),
    ("sparsepipe", "kcore", "gy"),
    ("ideal", "kcore", "gy"),
]


@pytest.fixture
def chaos_dir(tmp_path):
    override = os.environ.get("REPRO_CHAOS_DIR")
    if override:
        path = Path(override) / "chaos"
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path


def _plan():
    return FaultPlan(seed=SEED, faults={
        "parallel.worker": Fault(kind="worker_death", rate=1.0),
        "cache.get": Fault(kind="corrupt_file", rate=1.0),
        "engine.run": Fault(kind="raise", rate=1.0),
    })


class TestChaosSweep:
    def test_sweep_survives_every_fault_site(self, chaos_dir):
        cache_dir = chaos_dir / "cache"

        # Fault-free baseline; also populates the disk cache so the
        # chaos run exercises the cache.get corruption site.
        clean = ExperimentContext(cache_dir=cache_dir)
        baseline = clean.simulate_many(POINTS)
        assert all(m.status == "ok" for m in clean.manifests.values())

        chaotic = ExperimentContext(
            cache_dir=cache_dir, max_workers=2, on_error="retry")
        with activate(_plan()):
            results = chaotic.simulate_many(POINTS)
        fired = drain_fired()

        # Acceptance: the sweep completes, bit-identical to fault-free.
        assert results == baseline

        # Every injected fault is visible: SP607 fire records in this
        # process (cache corruption per entry + one transient raise per
        # point retried in-process after the pool broke)...
        assert all(d.code == "SP607" for d in fired)
        sites = {d.location.split("[")[0] for d in fired}
        assert {"cache.get", "engine.run"} <= sites

        # ...quarantined corpses on disk...
        quarantined = list((cache_dir / "quarantine").glob("*.json"))
        assert len(quarantined) == len(POINTS)

        # ...and SP6xx provenance in every point's manifest.
        codes = set()
        for point in POINTS:
            manifest = chaotic.manifest(*point)
            assert manifest.status == "retried"
            codes.update(f.get("code") for f in manifest.faults)
        assert {"SP601", "SP602", "SP604"} <= codes

        # Sweep-wide counters account the same events.
        assert chaotic.metrics.counter("cache.quarantined").value == len(POINTS)
        assert chaotic.metrics.counter("resilience.pool_breaks").value >= 1
        assert chaotic.metrics.counter("resilience.retries").value >= len(POINTS)

    def test_chaos_leaves_identical_digests(self, chaos_dir):
        # Surviving faults is unstable provenance: run identity (the
        # manifest digest) must match an undisturbed context's.
        clean = ExperimentContext()
        clean.simulate_many(POINTS[:2])
        chaotic = ExperimentContext(max_workers=2, on_error="retry")
        with activate(_plan()):
            chaotic.simulate_many(POINTS[:2])
        for point in POINTS[:2]:
            assert chaotic.manifest(*point).digest() == \
                clean.manifest(*point).digest()

    def test_repeat_run_is_deterministic(self, tmp_path):
        # Same seed, same faults, same outcome — chaos runs reproduce.
        outcomes = []
        for attempt in ("a", "b"):
            ctx = ExperimentContext(
                cache_dir=tmp_path / attempt, max_workers=2, on_error="retry")
            ctx.simulate_many(POINTS[:2])  # populate cache
            chaotic = ExperimentContext(
                cache_dir=tmp_path / attempt, max_workers=2, on_error="retry")
            with activate(_plan()):
                results = chaotic.simulate_many(POINTS[:2])
            statuses = tuple(
                chaotic.manifest(*p).status for p in POINTS[:2])
            outcomes.append((results, statuses))
        assert outcomes[0] == outcomes[1]


class TestChaosIngest:
    MTX = (
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 3\n"
        "1 1 1.0\n"
        "2 2 2.0\n"
        "3 3 3.0\n"
    )

    def test_corrupted_entry_line_fails_with_line_number(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(self.MTX)
        plan = FaultPlan(seed=SEED, faults={
            "ingest.entry": Fault(kind="corrupt_text", rate=0.0,
                                  keys=("4",), payload="1 1 bogus extra")})
        with activate(plan):
            with pytest.raises(FormatError, match="line 4") as err:
                read_matrix_market(path)
        assert "SP605" in err.value.codes
        # The fault fired exactly where the plan said.
        fired = drain_fired()
        assert [d.location for d in fired] == ["ingest.entry[4]"]

    def test_clean_file_reads_under_inactive_site(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(self.MTX)
        plan = FaultPlan(seed=SEED, faults={
            "ingest.entry": Fault(kind="corrupt_text", rate=0.0)})
        with activate(plan):
            coo = read_matrix_market(path)
        assert coo.shape == (3, 3) and coo.nnz == 3
        assert drain_fired() == []
