"""Shared hypothesis strategies for the property-based suites.

Every property test file imports its strategies from here — the single
home for the finite-float domain, seed/dimension integers, the monoid
name samplers, and the random e-wise program generator — instead of
redeclaring private copies. ``tests/test_strategies.py`` smoke-tests
the generators themselves.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.dataflow.program import EWiseInstr, OEIProgram, Operand, OperandKind
from repro.formats.coo import COOMatrix
from repro.semiring import MONOIDS

#: Finite floats bounded away from overflow — the shared numeric domain
#: of every algebraic property test.
finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

#: Full-range RNG seeds for deterministic random-matrix construction.
seeds = st.integers(0, 2**31 - 1)

#: Plain booleans (re-exported so test files need no ``st`` import).
booleans = st.booleans()


def dims(lo: int, hi: int):
    """Matrix/vector dimensions (or iteration counts) in ``[lo, hi]``."""
    if not 0 <= lo <= hi:
        raise ValueError(f"invalid dimension bounds [{lo}, {hi}]")
    return st.integers(lo, hi)


def finite_lists(max_size: int = 20):
    """Lists of finite floats, possibly empty (reduction inputs)."""
    return st.lists(finite, min_size=0, max_size=max_size)


def monoid_names(*names: str):
    """Sampler over monoid names — a subset, or every registered
    monoid when called without arguments."""
    pool = list(names) if names else sorted(MONOIDS)
    unknown = [n for n in pool if n not in MONOIDS]
    if unknown:
        raise ValueError(f"unknown monoid name(s): {unknown}")
    return st.sampled_from(pool)


def subtensor_widths(*widths: int):
    """Sampler over sub-tensor column widths for schedule sweeps."""
    if not widths:
        raise ValueError("subtensor_widths needs at least one width")
    return st.sampled_from(list(widths))


#: Binary ops that stay finite on bounded inputs.
SAFE_BINARY = ("plus", "minus", "times", "min", "max", "abs_diff")
#: Semirings whose add/mul keep bounded inputs bounded.
SAFE_SEMIRINGS = ("mul_add", "min_add", "max_times")


@st.composite
def coo_matrices(draw, max_n: int = 48, allow_empty: bool = True):
    """A deterministic random square COO matrix.

    Draws the seed/size/density (so shrinking walks toward small, sparse
    inputs) and builds the matrix with numpy — including the degenerate
    shapes the vectorized kernels must survive: fully empty matrices,
    empty rows/columns, and single-nonzero matrices.
    """
    n = draw(st.integers(1, max_n))
    seed = draw(seeds)
    density = draw(st.floats(0.0 if allow_empty else 0.05, 0.4))
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < density) * gen.uniform(-2.0, 2.0, (n, n))
    if draw(st.booleans()) and n > 2:
        dense[draw(st.integers(0, n - 1)), :] = 0.0   # an empty row
        dense[:, draw(st.integers(0, n - 1))] = 0.0   # an empty column
    return COOMatrix.from_dense(dense)


@st.composite
def random_programs(draw):
    """A random straight-line e-wise program of 1-4 instructions."""
    n_instr = draw(st.integers(1, 4))
    instructions = []
    aux_used = draw(st.booleans())
    scalar_used = draw(st.booleans())
    for i in range(n_instr):
        op = draw(st.sampled_from(SAFE_BINARY))
        sources = [Operand(OperandKind.Y)]
        if i > 0:
            sources.append(Operand(OperandKind.REG, draw(st.integers(0, i - 1))))
        choices = ["const"]
        if aux_used:
            choices.append("aux")
        if scalar_used:
            choices.append("scalar")
        kind = draw(st.sampled_from(choices))
        if kind == "const":
            extra = Operand(
                OperandKind.CONST,
                draw(st.floats(-2.0, 2.0, allow_nan=False)),
            )
        elif kind == "aux":
            extra = Operand(OperandKind.AUX, "a0")
        else:
            extra = Operand(OperandKind.SCALAR, "s0")
        srcs = (sources[-1], extra) if len(sources) > 1 else (sources[0], extra)
        instructions.append(EWiseInstr(op, i, srcs))
    semiring = draw(st.sampled_from(SAFE_SEMIRINGS))
    return OEIProgram(
        name="random",
        semiring_name=semiring,
        instructions=tuple(instructions),
        result_reg=n_instr - 1,
        aux_vectors=("a0",) if aux_used else (),
        scalar_names=("s0",) if scalar_used else (),
        n_registers=n_instr,
        has_oei=True,
    )
