"""Tests for the resilience layer: the supervised fan-out, the
parallel_map worker-death regression, the chunksize fix, the watchdog,
the fault-injection harness, and cache quarantine semantics."""

import collections
import json
import os
import time

import pytest

from repro.arch.config import SparsepipeConfig
from repro.engine import ResultCache
from repro.engine.parallel import parallel_map, pool_chunksize
from repro.errors import InjectedFault, ReproError, WatchdogTimeout
from repro.experiments.runner import ExperimentContext
from repro.resilience import (
    Fault,
    FaultPlan,
    FanoutOutcome,
    activate,
    drain_fired,
    supervised_map,
)
from repro.resilience import faults as faults_mod

_PARENT_PID = os.getpid()


# ----------------------------------------------------------------------
# Module-level (picklable) worker functions
# ----------------------------------------------------------------------
def _double(x):
    return x * 2


def _die_on_three(x):
    """Simulates an OOM-killed worker: dies only in a pool worker, so
    the serial fallback in the parent completes normally."""
    if x == 3 and os.getpid() != _PARENT_PID:
        os._exit(1)
    return x * 2


_CALLS = collections.Counter()


def _flaky_once(x):
    """Fails the first time each value is seen (in this process)."""
    _CALLS[x] += 1
    if _CALLS[x] == 1:
        raise ValueError(f"transient failure on {x}")
    return x * 2


def _always_fails(x):
    raise ValueError(f"permanent failure on {x}")


def _slow(x):
    time.sleep(30)
    return x  # pragma: no cover - the watchdog fires first


class TestParallelMapRegressions:
    def test_worker_death_falls_back_to_serial(self):
        # Seed bug: BrokenProcessPool was not in the except clause, so
        # one OOM-killed worker crashed the whole sweep.
        assert parallel_map(_die_on_three, range(6), max_workers=2) == [
            0, 2, 4, 6, 8, 10,
        ]

    def test_chunksize_uses_real_worker_count(self, monkeypatch):
        # Seed bug: with max_workers=None the heuristic divided by
        # len(items)//2 instead of the pool's real default, os.cpu_count().
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert pool_chunksize(64, None) == 8  # 64 / (4 * 2)
        assert pool_chunksize(64, 2) == 16    # explicit workers win
        assert pool_chunksize(1, None) == 1   # never below one
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert pool_chunksize(10, None) == 5  # cpu_count unknown -> 1

    def test_healthy_pool_still_works(self):
        assert parallel_map(_double, range(8), max_workers=2) == [
            x * 2 for x in range(8)
        ]


class TestSupervisedMap:
    def test_worker_death_degrades_with_sp601(self):
        outcome = supervised_map(_die_on_three, range(6), max_workers=2)
        assert outcome.results == [0, 2, 4, 6, 8, 10]
        assert outcome.pool_broken
        assert [d.code for d in outcome.diagnostics] == ["SP601"]
        assert outcome.ok

    def test_raise_policy_propagates(self):
        with pytest.raises(ValueError, match="permanent"):
            supervised_map(_always_fails, [1, 2], max_workers=1)

    def test_skip_policy_records_failures(self):
        outcome = supervised_map(
            _always_fails, [1, 2, 3], max_workers=1, on_error="skip")
        assert outcome.results == [None, None, None]
        assert len(outcome.failures) == 3
        assert all(f.diagnostic.code == "SP603" for f in outcome.failures)
        assert [f.index for f in outcome.failures] == [0, 1, 2]
        assert not outcome.ok

    def test_retry_policy_recovers_transients(self):
        _CALLS.clear()
        outcome = supervised_map(
            _flaky_once, [4, 5],
            max_workers=1, on_error="retry", retries=2)
        assert outcome.results == [8, 10]
        assert outcome.ok
        assert sorted(outcome.retried) == [0, 1]
        assert all(d.code == "SP602"
                   for diags in outcome.retried.values() for d in diags)

    def test_retry_policy_exhausts_to_failure(self):
        outcome = supervised_map(
            _always_fails, [1], max_workers=1, on_error="retry", retries=2)
        assert outcome.results == [None]
        assert outcome.failures[0].attempts == 3

    def test_watchdog_times_out_hung_item(self):
        outcome = supervised_map(
            _slow, [1], max_workers=1, on_error="skip", timeout_s=0.2)
        assert outcome.results == [None]
        assert "SP606" in outcome.failures[0].error or "watchdog" in (
            outcome.failures[0].error
        )

    def test_watchdog_raise_policy(self):
        with pytest.raises(WatchdogTimeout):
            supervised_map(_slow, [1], max_workers=1, timeout_s=0.2)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            supervised_map(_double, [1], on_error="ignore")

    def test_empty_items(self):
        outcome = supervised_map(_double, [], max_workers=4)
        assert outcome == FanoutOutcome(results=[])


class TestFaultPlan:
    def test_should_fire_is_pure_and_seeded(self):
        plan = FaultPlan(seed=1, faults={"s": Fault(kind="raise", rate=0.5)})
        fires = [plan.should_fire("s", str(k)) for k in range(200)]
        again = [plan.should_fire("s", str(k)) for k in range(200)]
        assert fires == again                      # deterministic
        assert 40 < sum(fires) < 160               # roughly the rate
        other = FaultPlan(seed=2, faults={"s": Fault(kind="raise", rate=0.5)})
        assert fires != [other.should_fire("s", str(k)) for k in range(200)]

    def test_explicit_keys_override_rate(self):
        plan = FaultPlan(seed=0, faults={
            "s": Fault(kind="raise", rate=0.0, keys=("a",))})
        assert plan.should_fire("s", "a")
        assert not plan.should_fire("s", "b")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Fault(kind="explode")

    def test_fires_at_most_once_per_key(self):
        plan = FaultPlan(seed=0, faults={"s": Fault(kind="raise", rate=1.0)})
        with activate(plan):
            with pytest.raises(InjectedFault):
                faults_mod.maybe_raise("s", "k")
            faults_mod.maybe_raise("s", "k")  # second call: no fire
            with pytest.raises(InjectedFault):
                faults_mod.maybe_raise("s", "other")
        assert len(drain_fired()) == 2

    def test_injected_fault_carries_sp607(self):
        plan = FaultPlan(seed=0, faults={"s": Fault(kind="raise")})
        with activate(plan):
            with pytest.raises(InjectedFault) as err:
                faults_mod.maybe_raise("s", "k")
        assert err.value.codes == ("SP607",)
        assert isinstance(err.value, ReproError)

    def test_corrupt_text_truncates_and_replaces(self):
        with activate(FaultPlan(seed=0, faults={
                "t": Fault(kind="corrupt_text", payload="truncate")})):
            assert faults_mod.maybe_corrupt_text("t", 1, "abcdef") == "abc"
        with activate(FaultPlan(seed=0, faults={
                "t": Fault(kind="corrupt_text", payload="garbage!")})):
            assert faults_mod.maybe_corrupt_text("t", 1, "abcdef") == "garbage!"
        # No plan: identity.
        assert faults_mod.maybe_corrupt_text("t", 1, "abcdef") == "abcdef"

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "f.json"
        path.write_text("0123456789")
        with activate(FaultPlan(seed=0, faults={
                "f": Fault(kind="corrupt_file", payload="truncate")})):
            faults_mod.maybe_corrupt_file("f", path.name, path)
        assert path.read_text() == "01234"
        missing = tmp_path / "absent.json"
        with activate(FaultPlan(seed=0, faults={
                "f": Fault(kind="corrupt_file")})):
            faults_mod.maybe_corrupt_file("f", "absent", missing)
        assert not missing.exists()

    def test_worker_death_is_noop_outside_workers(self):
        # In the parent process a worker_death fault must never fire
        # (nor be consumed): the supervisor retries serially in-parent.
        plan = FaultPlan(seed=0, faults={
            "w": Fault(kind="worker_death", rate=1.0)})
        with activate(plan):
            faults_mod.maybe_die("w", "k")  # must not exit, not consume
            assert drain_fired() == []

    def test_hooks_are_noops_without_a_plan(self):
        faults_mod.maybe_raise("s", "k")
        faults_mod.maybe_die("s", "k")
        assert faults_mod.active_plan() is None


class TestCacheTempFiles:
    def _result(self):
        from repro.arch.simulator import SparsepipeSimulator
        from repro.matrices import banded_mesh
        from repro.preprocess import preprocess
        from tests.test_engine import make_profile

        prep = preprocess(banded_mesh(120, 6, 400, seed=3),
                          reorder=None, block_size=None)
        return SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32)).run(
            make_profile(n_iterations=2), prep)

    def test_put_uses_unique_tmp_names(self, tmp_path, monkeypatch):
        # Seed bug: the temp name was pid-only, so two threads in one
        # process tore each other's temp file.
        from pathlib import Path

        cache = ResultCache(tmp_path)
        seen = []
        original = Path.replace

        def spy(self, target):
            seen.append(self.name)
            return original(self, target)

        monkeypatch.setattr(Path, "replace", spy)
        result = self._result()
        cache.put("a", "pr", "gy", "k", None, None, result=result)
        cache.put("a", "pr", "gy", "k", None, None, result=result)
        tmp_names = [n for n in seen if n.endswith(".tmp")]
        assert len(tmp_names) == 2
        assert tmp_names[0] != tmp_names[1]

    def test_clear_sweeps_tmp_debris(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = self._result()
        cache.put("a", "pr", "gy", "k", None, None, result=result)
        debris = tmp_path / f"entry.json.{os.getpid()}.0.tmp"
        debris.write_text("{half-written")
        shard_debris = (cache.shard_dir(0)
                        / f"entry.json.{os.getpid()}.1.tmp")
        shard_debris.write_text("{half-written")
        assert cache.clear() == 1
        assert not debris.exists()
        assert not shard_debris.exists()
        assert list(tmp_path.rglob("*.tmp")) == []


class TestCacheQuarantine:
    KEY = ("sparsepipe", "pr", "gy", "abc", None, None)

    def _result(self, backend):
        from repro.arch.simulator import SparsepipeSimulator
        from repro.matrices import banded_mesh
        from repro.preprocess import preprocess
        from tests.test_engine import make_profile

        prep = preprocess(banded_mesh(120, 6, 400, seed=3),
                          reorder=None, block_size=None)
        sim = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=32, backend=backend))
        return sim.run(make_profile(n_iterations=2), prep)

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    @pytest.mark.parametrize("corruption", ["truncated", "wrong_key", "edited"])
    def test_corrupt_entries_quarantine_and_repopulate(
            self, tmp_path, backend, corruption):
        cache = ResultCache(tmp_path)
        result = self._result(backend)
        path = cache.put(*self.KEY, result=result)
        if corruption == "truncated":
            path.write_text(path.read_text()[: len(path.read_text()) // 2])
        elif corruption == "wrong_key":
            doc = json.loads(path.read_text())
            doc["key"] = "not the stored key"
            path.write_text(json.dumps(doc))
        else:  # hand-edited result payload
            doc = json.loads(path.read_text())
            doc["result"] = {"cycles": "tampered"}
            path.write_text(json.dumps(doc))
        # Miss cleanly...
        assert cache.get(*self.KEY) is None
        # ...quarantine the corpse (never silently re-missed forever)...
        assert not path.exists()
        # Quarantine lives beside the entry, inside its own shard.
        assert (path.parent / "quarantine" / path.name).exists()
        assert [p.name for p in cache.quarantine_paths()] == [path.name]
        diags = cache.pop_diagnostics()
        assert [d.code for d in diags] == ["SP604"]
        assert cache.pop_diagnostics() == []
        # ...and re-populate on the next put.
        cache.put(*self.KEY, result=result)
        assert cache.get(*self.KEY) == result

    def test_missing_file_is_plain_miss_no_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(*self.KEY) is None
        assert not any(d.exists() for d in cache.quarantine_dirs())
        assert cache.pop_diagnostics() == []

    def test_context_counts_quarantine(self, tmp_path):
        ctx = ExperimentContext(matrices=("gy",), cache_dir=tmp_path)
        ctx.simulate("ideal", "pr", "gy")
        entry = next(tmp_path.rglob("*.json"))
        entry.write_text("garbage{")
        fresh = ExperimentContext(matrices=("gy",), cache_dir=tmp_path)
        fresh.simulate("ideal", "pr", "gy")
        assert fresh.metrics.counter("cache.quarantined").value == 1
        manifest = fresh.manifest("ideal", "pr", "gy")
        assert any(f.get("code") == "SP604" for f in manifest.faults)


class TestSimulateManyPolicies:
    POINTS = [("ideal", "pr", "gy"), ("ideal", "kcore", "gy")]
    PLAN = FaultPlan(seed=0, faults={
        "engine.run": Fault(kind="raise", rate=1.0)})

    def test_skip_returns_none_and_failed_manifest(self):
        ctx = ExperimentContext(on_error="skip")
        with activate(self.PLAN):
            results = ctx.simulate_many(self.POINTS)
        assert results == [None, None]
        for point in self.POINTS:
            manifest = ctx.manifest(*point)
            assert manifest.status == "failed"
            assert any(f.get("code") == "SP603" for f in manifest.faults)
        assert ctx.metrics.counter("resilience.failures").value == 2

    def test_retry_recovers_and_marks_manifest(self):
        ctx = ExperimentContext(on_error="retry")
        baseline = ExperimentContext().simulate_many(self.POINTS)
        with activate(self.PLAN):
            results = ctx.simulate_many(self.POINTS)
        assert results == baseline
        for point in self.POINTS:
            manifest = ctx.manifest(*point)
            assert manifest.status == "retried"
            assert any(f.get("code") == "SP602" for f in manifest.faults)
        assert ctx.metrics.counter("resilience.retries").value == 2

    def test_raise_policy_is_default(self):
        with activate(self.PLAN):
            with pytest.raises(InjectedFault):
                ExperimentContext().simulate_many(self.POINTS)

    def test_retried_digest_matches_clean_digest(self):
        # Failure provenance is unstable metadata: surviving a fault
        # must not change run identity.
        clean = ExperimentContext()
        clean.simulate_many(self.POINTS)
        chaotic = ExperimentContext(on_error="retry")
        with activate(self.PLAN):
            chaotic.simulate_many(self.POINTS)
        for point in self.POINTS:
            assert chaotic.manifest(*point).digest() == \
                clean.manifest(*point).digest()

    def test_bad_policy_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="on_error"):
            ExperimentContext(on_error="explode")
        with pytest.raises(ConfigError, match="on_error"):
            ExperimentContext().simulate_many(self.POINTS, on_error="nope")
