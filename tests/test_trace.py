"""Tests for the tracing frontend: OEI discovery from executed
GraphBLAS-mini code, with values checked against untraced execution."""

import numpy as np
import pytest

from repro.dataflow import compile_program, find_oei_path
from repro.dataflow.trace import Tracer
from repro.errors import CompileError
from repro.graphblas import Matrix, Vector, vxm
from repro.semiring import (
    MIN,
    MIN_ADD,
    MUL_ADD,
    PLUS,
    PLUS_MONOID,
    TIMES,
)
from tests.conftest import random_coo


@pytest.fixture
def graph_matrix():
    return Matrix(random_coo(21, n=40, density=0.15))


def trace_pagerank(matrix: Matrix):
    n = matrix.nrows
    tracer = Tracer("traced_pr")
    pr = tracer.source("pr", Vector.dense(n, 1.0 / n))
    link = tracer.constant_matrix("L", matrix)
    y = tracer.vxm(pr, link, MUL_ADD)
    scaled = tracer.apply_bind(y, TIMES, 0.85)
    new = tracer.apply_scalar(scaled, PLUS, "teleport", 0.15 / n)
    tracer.carry(new, pr)
    return tracer, new


def trace_cg_step(matrix: Matrix):
    """CG-shaped body: alpha reduces the fresh vxm output."""
    n = matrix.nrows
    tracer = Tracer("traced_cg")
    p = tracer.source("p", Vector.dense(n, 1.0))
    m = tracer.constant_matrix("M", matrix)
    q = tracer.vxm(p, m, MUL_ADD)
    alpha = tracer.dot(p, q, MUL_ADD, scalar_name="alpha")
    ap = tracer.apply_scalar(p, TIMES, "alpha", alpha.value)
    x = tracer.source("x", Vector.dense(n, 0.0))
    x_new = tracer.ewise(PLUS, x, ap)
    tracer.carry(x_new, x)
    # p update through the alpha-scaled q: blocked scalar dependency.
    aq = tracer.apply_scalar(q, TIMES, "alpha", alpha.value)
    p_new = tracer.ewise(PLUS, x_new, aq)
    tracer.carry(p_new, p)
    return tracer


class TestTracedValues:
    def test_traced_pagerank_executes_correctly(self, graph_matrix):
        _, new = trace_pagerank(graph_matrix)
        n = graph_matrix.nrows
        expected = vxm(Vector.dense(n, 1.0 / n), graph_matrix, MUL_ADD)
        expected_dense = 0.85 * expected.to_dense() + 0.15 / n
        got = new.value.to_dense(fill=np.nan)
        present = new.value.present
        assert np.allclose(got[present], expected_dense[present])

    def test_traced_ewise_mult_and_reduce(self, graph_matrix):
        n = graph_matrix.nrows
        tracer = Tracer("t")
        a = tracer.source("a", Vector.dense(n, 2.0))
        b = tracer.source("b", Vector.dense(n, 3.0))
        prod = tracer.ewise_mult(TIMES, a, b)
        total = tracer.reduce(prod, PLUS_MONOID)
        assert total.value == pytest.approx(6.0 * n)

    def test_traced_min_add_vxm(self, graph_matrix):
        n = graph_matrix.nrows
        tracer = Tracer("t")
        dist = tracer.source("dist", Vector.dense(n, 0.0))
        m = tracer.constant_matrix("A", graph_matrix)
        relaxed = tracer.vxm(dist, m, MIN_ADD)
        reference = vxm(Vector.dense(n, 0.0), graph_matrix, MIN_ADD)
        assert relaxed.value.isclose(reference)


class TestTracedCompilation:
    def test_pagerank_trace_discovers_oei(self, graph_matrix):
        tracer, _ = trace_pagerank(graph_matrix)
        path = find_oei_path(tracer.graph)
        assert path is not None
        assert path.iteration_distance == 1
        program = compile_program(tracer.graph)
        assert program.has_oei
        assert program.semiring_name == "mul_add"
        assert program.n_path_ops == 2
        assert program.scalar_names == ("teleport",)

    def test_traced_program_runs_elementwise(self, graph_matrix):
        tracer, _ = trace_pagerank(graph_matrix)
        program = compile_program(tracer.graph)
        out = program.run_elementwise(
            np.array([1.0, 2.0]), np.array([0, 1]), {}, {"teleport": 0.1}
        )
        assert np.allclose(out, 0.85 * np.array([1.0, 2.0]) + 0.1)

    def test_cg_trace_has_no_oei(self, graph_matrix):
        tracer = trace_cg_step(graph_matrix)
        assert find_oei_path(tracer.graph) is None
        program = compile_program(tracer.graph)
        assert not program.has_oei

    def test_varying_matrix_blocks_reuse(self, graph_matrix):
        n = graph_matrix.nrows
        tracer = Tracer("t")
        v = tracer.source("v", Vector.dense(n, 1.0))
        m = tracer.varying_matrix("M", graph_matrix)
        out = tracer.vxm(v, m, MUL_ADD)
        tracer.carry(out, v)
        assert find_oei_path(tracer.graph) is None

    def test_two_hop_trace_fuses_within_iteration(self, graph_matrix):
        from repro.semiring import AND_OR

        n = graph_matrix.nrows
        tracer = Tracer("t")
        f = tracer.source("f", Vector.from_entries(n, [0], [1.0]))
        m = tracer.constant_matrix("A", graph_matrix)
        hop1 = tracer.vxm(f, m, AND_OR)
        hop2 = tracer.vxm(hop1, m, AND_OR)
        tracer.carry(hop2, f)
        path = find_oei_path(tracer.graph)
        assert path is not None
        assert path.iteration_distance == 0

    def test_self_carry_rejected(self, graph_matrix):
        tracer = Tracer("t")
        v = tracer.source("v", Vector.dense(graph_matrix.nrows, 1.0))
        with pytest.raises(CompileError):
            tracer.carry(v, v)

    def test_generated_names_unique(self, graph_matrix):
        tracer, _ = trace_pagerank(graph_matrix)
        names = [op.name for op in tracer.graph.ops]
        assert len(names) == len(set(names))
        tensors = list(tracer.graph.tensors)
        assert len(tensors) == len(set(tensors))
