"""Regression lock on the simulator's observer event contract.

The :mod:`repro.engine.instrumentation` docstring promises three
things downstream observers (timeline, metrics, step traces) depend
on; this file turns each promise into a test:

1. ``step`` is always the **last** event of its step — every transfer /
   prefetch / evict / repack is flushed before its step commits;
2. ``FILL_STEP`` fires exactly once per OEI pair (and once per
   single-iteration stream tail);
3. with **no observers registered the simulator constructs no events
   at all** — the zero-observer fast path really is event-free, not
   merely event-discarding.
"""

import numpy as np
import pytest

from repro.arch.config import SparsepipeConfig
from repro.arch.profile import WorkloadProfile
from repro.arch import simulator as simulator_module
from repro.arch.simulator import SparsepipeSimulator
from repro.engine.instrumentation import (
    FILL_STEP,
    EventLogObserver,
    Instrumentation,
)
from repro.formats.coo import COOMatrix


def _coo(n=24, density=0.25, seed=7):
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < density) * gen.uniform(0.1, 1.0, (n, n))
    return COOMatrix.from_dense(dense)


def _profile(n_iterations, has_oei=True):
    return WorkloadProfile(
        name="p", semiring_name="mul_add", has_oei=has_oei,
        n_iterations=n_iterations, path_ewise_ops=1,
    )


def _run(n_iterations, has_oei=True, observers=None):
    log = EventLogObserver()
    obs = [log] if observers is None else observers
    SparsepipeSimulator(SparsepipeConfig()).run(
        _profile(n_iterations, has_oei), _coo(), observers=obs
    )
    return log.events


class TestStepIsLastEventOfItsStep:
    def test_stream_ends_with_a_step_event(self):
        events = _run(4)
        assert events and events[0][0] != "step"
        assert events[-1][0] == "step"

    def test_no_event_dangles_after_its_step(self):
        """Every non-step event is followed (eventually) by the step
        event that closes it — i.e. the stream never ends mid-step and
        no two step events are adjacent to orphaned work."""
        events = _run(5)
        open_work = False
        for ev in events:
            if ev[0] == "step":
                open_work = False
            else:
                open_work = True
        assert not open_work

    def test_every_step_commits_some_prior_event_kinds(self):
        kinds = {ev[0] for ev in _run(4)}
        assert {"step", "transfer"} <= kinds


class TestFillStepContract:
    @pytest.mark.parametrize(
        "n_iterations,has_oei,expected_fills",
        [
            (4, True, 2),   # two OEI pairs
            (6, True, 3),   # three pairs
            (5, True, 3),   # two pairs + one stream tail
            (1, True, 1),   # single stream
            (3, False, 3),  # no OEI: one fill per sequential iteration
        ],
    )
    def test_fill_once_per_pair_or_stream(
        self, n_iterations, has_oei, expected_fills
    ):
        events = _run(n_iterations, has_oei=has_oei)
        fills = [ev for ev in events if ev[0] == "step" and ev[1] == FILL_STEP]
        assert len(fills) == expected_fills

    def test_fill_steps_carry_no_moved_bytes(self):
        for ev in _run(4):
            if ev[0] == "step" and ev[1] == FILL_STEP:
                assert ev[3] == {}

    def test_non_fill_step_indices_are_non_negative(self):
        steps = [ev[1] for ev in _run(4) if ev[0] == "step"]
        assert all(s >= 0 or s == FILL_STEP for s in steps)
        assert any(s >= 0 for s in steps)


class _CountingInstrumentation(Instrumentation):
    """Counts every event-dispatch call the simulator makes."""

    calls = 0

    def step(self, *args, **kwargs):
        _CountingInstrumentation.calls += 1
        super().step(*args, **kwargs)

    def transfer(self, *args, **kwargs):
        _CountingInstrumentation.calls += 1
        super().transfer(*args, **kwargs)

    def evict(self, *args, **kwargs):
        _CountingInstrumentation.calls += 1
        super().evict(*args, **kwargs)

    def repack(self, *args, **kwargs):
        _CountingInstrumentation.calls += 1
        super().repack(*args, **kwargs)

    def prefetch(self, *args, **kwargs):
        _CountingInstrumentation.calls += 1
        super().prefetch(*args, **kwargs)


class TestZeroObserverFastPath:
    def test_no_events_constructed_without_observers(self, monkeypatch):
        monkeypatch.setattr(
            simulator_module, "Instrumentation", _CountingInstrumentation
        )
        _CountingInstrumentation.calls = 0
        SparsepipeSimulator(SparsepipeConfig()).run(
            _profile(4), _coo(), observers=()
        )
        assert _CountingInstrumentation.calls == 0

    def test_counting_shim_detects_observed_runs(self, monkeypatch):
        """The shim itself is live: with one observer the counter
        moves, so the zero above is meaningful."""
        monkeypatch.setattr(
            simulator_module, "Instrumentation", _CountingInstrumentation
        )
        _CountingInstrumentation.calls = 0
        SparsepipeSimulator(SparsepipeConfig()).run(
            _profile(4), _coo(), observers=[EventLogObserver()]
        )
        assert _CountingInstrumentation.calls > 0

    def test_zero_observer_result_is_bit_identical(self):
        """Attaching (or omitting) observers never changes the model:
        the observed and fast-path results agree exactly."""
        observed = SparsepipeSimulator(SparsepipeConfig()).run(
            _profile(4), _coo(), observers=[EventLogObserver()]
        )
        bare = SparsepipeSimulator(SparsepipeConfig()).run(
            _profile(4), _coo(), observers=()
        )
        assert bare.cycles == observed.cycles
        assert bare.traffic.bytes_by_category == observed.traffic.bytes_by_category
        assert bare.compute_ops == observed.compute_ops
