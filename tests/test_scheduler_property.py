"""Differential property test: the service's observable outcome is a
function of the submissions, not of the scheduler backend.

Hypothesis generates submission sequences — points drawn from a small
pool, with priorities and deliberate duplicates — and replays each
sequence through a live :class:`JobQueue` once per backend. Priority
dispatch and coalescing may *schedule* differently (a duplicate can
coalesce onto a running primary or be served from the memo an instant
later — that race is timing, not semantics), but every backend must
land the same terminal statuses, bit-identical results, equal manifest
digests, and the same ``sim.runs`` count (fresh simulations are keyed
by unique points, never by substrate or dispatch order).

``REPRO_SCHED_BACKENDS`` restricts the backend matrix, as in the
conformance and chaos suites. Examples are few (``max_examples=3``)
and the deadline is off: a spool example pays a Python-startup tax
per job, and the property is about cross-backend agreement, not speed.
"""

import asyncio
import os

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.experiments.runner import ExperimentContext  # noqa: E402
from repro.service import JobQueue  # noqa: E402

ALL_BACKENDS = ("inprocess", "localpool", "spool")
BACKENDS = tuple(
    b for b in ALL_BACKENDS
    if b in os.environ.get(
        "REPRO_SCHED_BACKENDS", ",".join(ALL_BACKENDS)).split(",")
)

#: Cheap, distinct simulation points for generated submissions.
POINT_POOL = [
    ("sparsepipe", "pr", "gy"),
    ("ideal", "pr", "gy"),
    ("cpu", "pr", "gy"),
]

#: A submission is (point, priority); sequences repeat points on
#: purpose so coalescing and memo-serving both get exercised.
SUBMISSIONS = st.lists(
    st.tuples(st.sampled_from(POINT_POOL),
              st.integers(min_value=-2, max_value=2)),
    min_size=1, max_size=5,
)


def _replay(submissions, backend):
    """Run one submission sequence on one backend; return the
    backend-independent observables."""

    async def main():
        context = ExperimentContext(max_workers=2, scheduler=backend)
        queue = JobQueue(context=context, scheduler=backend)
        await queue.start()
        job_ids = [await queue.submit(point, priority=priority)
                   for point, priority in submissions]
        jobs = [await queue.result(j, timeout=300) for j in job_ids]
        await queue.close()
        return context, jobs

    context, jobs = asyncio.run(main())
    return {
        "statuses": [job.status for job in jobs],
        "results": [job.result for job in jobs],
        "digests": [job.manifest.digest() for job in jobs],
        "sim_runs": context.metrics.counter("sim.runs").value,
    }


@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(submissions=SUBMISSIONS)
def test_service_outcome_is_backend_invariant(submissions):
    reference = _replay(submissions, BACKENDS[0])

    # The invariants hold against the sequence itself...
    assert reference["statuses"] == ["done"] * len(submissions)
    unique_points = {point for point, _priority in submissions}
    assert reference["sim_runs"] == len(unique_points)
    by_point = {}
    for (point, _priority), result, digest in zip(
            submissions, reference["results"], reference["digests"]):
        assert by_point.setdefault(point, (result, digest)) == \
            (result, digest), "duplicate submissions must agree"

    # ...and identically on every other backend.
    for backend in BACKENDS[1:]:
        assert _replay(submissions, backend) == reference, backend
