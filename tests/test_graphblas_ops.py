"""Tests for GraphBLAS-mini operations against dense references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.graphblas import (
    Mask,
    Matrix,
    Vector,
    apply,
    apply_bind,
    assign_scalar,
    ewise_add,
    ewise_mult,
    mxm,
    mxm_dense,
    mxv,
    reduce_vector,
    select,
    vector_dot,
    vxm,
)
from repro.semiring import (
    ABS,
    AND_OR,
    LOR,
    MIN,
    MIN_ADD,
    MIN_MONOID,
    MUL_ADD,
    PLUS,
    PLUS_MONOID,
    TIMES,
)


@pytest.fixture
def matrix(small_dense):
    return Matrix.from_dense(small_dense)


@pytest.fixture
def full_vec(rng):
    return Vector(30, rng.random(30))


class TestContractions:
    def test_vxm_mul_add(self, matrix, full_vec, small_dense):
        out = vxm(full_vec, matrix, MUL_ADD)
        assert np.allclose(out.to_dense(), full_vec.to_dense() @ small_dense)

    def test_mxv_mul_add(self, matrix, full_vec, small_dense):
        out = mxv(matrix, full_vec, MUL_ADD)
        assert np.allclose(out.to_dense(), small_dense @ full_vec.to_dense())

    def test_vxm_output_absent_on_empty_columns(self, matrix, full_vec):
        out = vxm(full_vec, matrix, MUL_ADD)
        assert not out.present[13]  # column 13 is structurally empty

    def test_vxm_sparse_input_skips_absent(self, matrix, small_dense):
        v = Vector.from_entries(30, [0, 5], [1.0, 2.0])
        out = vxm(v, matrix, MUL_ADD)
        expected = small_dense[0] * 1.0 + small_dense[5] * 2.0
        got = out.to_dense()
        contributing = (small_dense[0] != 0) | (small_dense[5] != 0)
        assert np.allclose(got[contributing], expected[contributing])

    def test_vxm_min_add(self, matrix, small_dense):
        v = Vector.dense(30, fill=0.0)
        out = vxm(v, matrix, MIN_ADD)
        dense = np.where(small_dense != 0, small_dense, np.inf)
        expected = dense.min(axis=0)
        present = np.isfinite(expected)
        assert np.allclose(out.to_dense(fill=np.inf)[present], expected[present])

    def test_vxm_and_or_frontier(self, matrix, small_dense):
        frontier = Vector.from_entries(30, [2], [1.0])
        out = vxm(frontier, matrix, AND_OR)
        reachable = np.flatnonzero(small_dense[2])
        idx, vals = out.entries()
        assert set(idx) == set(reachable)
        assert np.all(vals == 1.0)

    def test_vxm_shape_check(self, matrix):
        with pytest.raises(ShapeError):
            vxm(Vector.dense(29), matrix)

    def test_vxm_with_mask(self, matrix, full_vec):
        mask_vec = Vector.from_entries(30, [0, 1], [1.0, 1.0])
        out = vxm(full_vec, matrix, MUL_ADD, mask=Mask(mask_vec))
        assert np.all(~out.present[2:])

    def test_vxm_with_complement_mask(self, matrix, full_vec):
        visited = Vector.from_entries(30, list(range(25)), [1.0] * 25)
        out = vxm(full_vec, matrix, MUL_ADD, mask=Mask(visited, complement=True))
        assert not out.present[:25].any()

    def test_vxm_accumulator(self, matrix, full_vec, small_dense):
        base = Vector.dense(30, fill=10.0)
        out = vxm(full_vec, matrix, MUL_ADD, accum=PLUS, out=base)
        raw = full_vec.to_dense() @ small_dense
        has = vxm(full_vec, matrix, MUL_ADD).present
        assert np.allclose(out.to_dense()[has], raw[has] + 10.0)
        assert np.allclose(out.to_dense()[~has], 10.0)

    def test_mxm_matches_dense(self, rng):
        a = (rng.random((12, 9)) < 0.4) * rng.random((12, 9))
        b = (rng.random((9, 7)) < 0.4) * rng.random((9, 7))
        out = mxm(Matrix.from_dense(a), Matrix.from_dense(b), MUL_ADD)
        assert np.allclose(out.to_dense(), a @ b)

    def test_mxm_shape_check(self, matrix):
        with pytest.raises(ShapeError):
            mxm(matrix, Matrix.from_dense(np.zeros((5, 5))))

    def test_mxm_empty_result(self):
        a = Matrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]]))
        b = Matrix.from_dense(np.array([[0.0, 0.0], [0.0, 0.0]]))
        assert mxm(a, b).nnz == 0

    def test_mxm_dense_matches_numpy(self, matrix, small_dense, rng):
        b = rng.random((30, 8))
        assert np.allclose(mxm_dense(matrix, b), small_dense @ b)


class TestElementwise:
    def test_ewise_add_union(self):
        u = Vector.from_entries(4, [0, 1], [1.0, 2.0])
        v = Vector.from_entries(4, [1, 2], [10.0, 20.0])
        out = ewise_add(u, v, PLUS)
        assert out.get(0) == 1.0 and out.get(1) == 12.0 and out.get(2) == 20.0
        assert not out.present[3]

    def test_ewise_mult_intersection(self):
        u = Vector.from_entries(4, [0, 1], [3.0, 2.0])
        v = Vector.from_entries(4, [1, 2], [10.0, 20.0])
        out = ewise_mult(u, v, TIMES)
        assert out.nvals == 1 and out.get(1) == 20.0

    def test_ewise_min(self):
        u = Vector.dense(3, 5.0)
        v = Vector.from_entries(3, [1], [2.0])
        out = ewise_add(u, v, MIN)
        assert out.get(1) == 2.0 and out.get(0) == 5.0

    def test_apply(self):
        u = Vector.from_entries(3, [0], [-4.0])
        assert apply(u, ABS).get(0) == 4.0

    def test_apply_bind_right(self):
        u = Vector.dense(2, 3.0)
        out = apply_bind(u, TIMES, 2.0)
        assert np.array_equal(out.to_dense(), [6.0, 6.0])

    def test_apply_bind_left(self):
        from repro.semiring import MINUS

        u = Vector.dense(2, 3.0)
        out = apply_bind(u, MINUS, 10.0, bind_right=False)
        assert np.array_equal(out.to_dense(), [7.0, 7.0])

    def test_size_mismatch(self):
        with pytest.raises(ShapeError):
            ewise_add(Vector.dense(2), Vector.dense(3), PLUS)


class TestFoldSelectDot:
    def test_reduce_plus(self):
        u = Vector.from_entries(5, [0, 4], [1.5, 2.5])
        assert reduce_vector(u, PLUS_MONOID) == 4.0

    def test_reduce_empty_is_identity(self):
        assert reduce_vector(Vector.empty(3), MIN_MONOID) == np.inf

    def test_select_keeps_matching(self):
        u = Vector(4, np.array([1.0, -2.0, 3.0, -4.0]))
        out = select(u, lambda vals: vals > 0)
        idx, _ = out.entries()
        assert list(idx) == [0, 2]

    def test_vector_dot(self, rng):
        a, b = rng.random(8), rng.random(8)
        assert np.isclose(
            vector_dot(Vector(8, a), Vector(8, b), MUL_ADD), a @ b
        )

    def test_vector_dot_respects_presence(self):
        u = Vector.from_entries(3, [0], [2.0])
        v = Vector.dense(3, 10.0)
        assert vector_dot(u, v, MUL_ADD) == 20.0

    def test_assign_scalar_with_mask(self):
        u = Vector.empty(4)
        mask = Mask(Vector.from_entries(4, [1, 2], [1.0, 1.0]))
        out = assign_scalar(u, 7.0, mask=mask)
        assert out.nvals == 2 and out.get(1) == 7.0


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 14), st.integers(0, 2**31 - 1))
def test_property_vxm_equals_semiring_dense_reference(n, seed):
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < 0.4) * gen.uniform(0.1, 2.0, (n, n))
    x = gen.uniform(0.1, 2.0, n)
    m = Matrix.from_dense(dense)
    out = vxm(Vector(n, x), m, MUL_ADD)
    assert np.allclose(out.to_dense(), x @ dense)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 14), st.integers(0, 2**31 - 1))
def test_property_vxm_mxv_transpose_duality(n, seed):
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < 0.4) * gen.uniform(0.1, 2.0, (n, n))
    x = gen.uniform(0.1, 2.0, n)
    m = Matrix.from_dense(dense)
    mt = Matrix.from_dense(dense.T)
    a = vxm(Vector(n, x), m, MUL_ADD)
    b = mxv(mt, Vector(n, x), MUL_ADD)
    assert np.array_equal(a.present, b.present)
    assert np.allclose(a.to_dense(), b.to_dense())


class TestMaskAccumInteraction:
    def test_masked_write_without_accum_keeps_outside_entries(self, matrix, full_vec):
        """GraphBLAS non-replace semantics: with a mask and an existing
        output (no accumulator), entries outside the mask survive."""
        old = Vector.dense(30, fill=7.0)
        mask = Mask(Vector.from_entries(30, [0, 1, 2], [1.0] * 3))
        out = vxm(full_vec, matrix, MUL_ADD, mask=mask, out=old)
        assert np.all(out.values[3:][out.present[3:]] == 7.0)
        assert out.present[3:].all()

    def test_mask_with_accum_combines_only_inside(self, matrix, full_vec):
        old = Vector.dense(30, fill=100.0)
        mask = Mask(Vector.from_entries(30, [0], [1.0]))
        out = vxm(full_vec, matrix, MUL_ADD, mask=mask, accum=PLUS, out=old)
        raw = vxm(full_vec, matrix, MUL_ADD)
        if raw.present[0]:
            assert out.get(0) == pytest.approx(100.0 + raw.get(0))
        assert np.all(out.values[1:] == 100.0)

    def test_accum_out_size_mismatch(self, matrix, full_vec):
        with pytest.raises(ShapeError):
            vxm(full_vec, matrix, MUL_ADD, accum=PLUS, out=Vector.dense(29))

    def test_ewise_with_mask(self):
        u, v = Vector.dense(4, 1.0), Vector.dense(4, 2.0)
        mask = Mask(Vector.from_entries(4, [1, 3], [1.0, 1.0]))
        out = ewise_add(u, v, PLUS, mask=mask)
        assert out.nvals == 2 and out.get(1) == 3.0

    def test_vector_isclose_with_nan(self):
        a = Vector(3, np.array([1.0, np.nan, 2.0]))
        b = Vector(3, np.array([1.0, np.nan, 2.0]))
        assert a.isclose(b)
