"""Trace export, determinism, and manifest provenance tests.

Locks the externally visible artifacts of the observability layer:
the Chrome/Perfetto trace JSON validates against the Trace Event
Format contract, reruns of one configuration are **byte-identical**,
and manifests distinguish fresh results from cache-served ones while
keeping the same stable digest.
"""

import json

from repro.experiments.runner import ExperimentContext
from repro.obs import (
    RunManifest,
    capture_run,
    validate_chrome_trace,
)


class TestChromeTraceExport:
    def test_capture_run_trace_validates(self):
        cap = capture_run("bfs", matrix="gy")
        doc = cap.timeline.to_chrome_trace(manifest=cap.manifest)
        events = validate_chrome_trace(doc)
        assert len(events) > 0
        assert doc["metadata"]["tsUnit"] == "cycles"
        assert doc["metadata"]["manifestDigest"] == cap.manifest.digest()

    def test_trace_has_expected_tracks(self):
        cap = capture_run("bfs", matrix="gy")
        doc = cap.timeline.to_chrome_trace()
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev.get("ph") == "M" and ev["name"] == "thread_name"
        }
        assert {"pipeline steps", "DRAM channel", "OS core"} <= names

    def test_written_file_round_trips(self, tmp_path):
        cap = capture_run("bfs", matrix="gy")
        trace_path, manifest_path = cap.write_trace(tmp_path / "trace.json")
        assert trace_path.exists() and manifest_path.exists()
        doc = json.loads(trace_path.read_text())
        validate_chrome_trace(doc)
        sidecar = json.loads(manifest_path.read_text())
        assert sidecar["digest"] == cap.manifest.digest()
        assert RunManifest.from_dict(sidecar).digest() == cap.manifest.digest()


class TestDeterminism:
    def test_trace_json_is_byte_identical_across_runs(self, tmp_path):
        a = capture_run("bfs", matrix="gy")
        b = capture_run("bfs", matrix="gy")
        pa, _ = a.write_trace(tmp_path / "a.json")
        pb, _ = b.write_trace(tmp_path / "b.json")
        assert pa.read_bytes() == pb.read_bytes()

    def test_manifest_digest_is_stable_across_runs(self):
        a = capture_run("pr", matrix="gy")
        b = capture_run("pr", matrix="gy")
        assert a.manifest.digest() == b.manifest.digest()
        # Wall time differs between runs but never enters the digest.
        assert a.manifest.metrics_digest == b.manifest.metrics_digest

    def test_different_workloads_get_different_digests(self):
        a = capture_run("bfs", matrix="gy")
        b = capture_run("pr", matrix="gy")
        assert a.manifest.digest() != b.manifest.digest()


class TestCacheProvenance:
    def test_fresh_then_served_manifests(self, tmp_path):
        fresh_ctx = ExperimentContext(cache_dir=tmp_path)
        fresh_ctx.simulate("sparsepipe", "bfs", "gy")
        fresh = fresh_ctx.manifest("sparsepipe", "bfs", "gy")
        assert fresh is not None
        assert fresh.from_cache is False
        assert fresh.wall_time_s is not None and fresh.wall_time_s >= 0.0

        served_ctx = ExperimentContext(cache_dir=tmp_path)
        served_ctx.simulate("sparsepipe", "bfs", "gy")
        served = served_ctx.manifest("sparsepipe", "bfs", "gy")
        assert served is not None
        assert served.from_cache is True
        # Cache service changes provenance, never identity.
        assert served.digest() == fresh.digest()
        assert served_ctx.metrics.value("cache.disk_hits") == 1.0

    def test_manifest_to_dict_marks_cache_service(self, tmp_path):
        ctx = ExperimentContext(cache_dir=tmp_path)
        ctx.simulate("sparsepipe", "bfs", "gy")
        again = ExperimentContext(cache_dir=tmp_path)
        again.simulate("sparsepipe", "bfs", "gy")
        doc = again.manifest("sparsepipe", "bfs", "gy").to_dict()
        assert doc["from_cache"] is True

    def test_served_result_is_identical_to_fresh(self, tmp_path):
        ctx = ExperimentContext(cache_dir=tmp_path)
        fresh = ctx.simulate("sparsepipe", "bfs", "gy")
        again = ExperimentContext(cache_dir=tmp_path)
        served = again.simulate("sparsepipe", "bfs", "gy")
        assert served.cycles == fresh.cycles
        assert served.traffic.bytes_by_category == fresh.traffic.bytes_by_category
