"""Tests for the AST self-lint (repro.analysis.selfcheck)."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.selfcheck import selfcheck


def write_tree(root: Path, files: dict) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


class TestRealTree:
    def test_library_is_clean(self):
        report = selfcheck()
        assert report.ok, report.format()

    def test_library_has_no_warnings_either(self):
        assert len(selfcheck()) == 0


class TestForbiddenImports:
    def test_sp901_scipy_import(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "import scipy.sparse\n"})
        report = selfcheck(tmp_path)
        assert report.has("SP901")

    def test_sp901_networkx_from_import(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "from networkx import DiGraph\n"})
        assert selfcheck(tmp_path).has("SP901")

    def test_numpy_is_allowed(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "import numpy as np\n"})
        assert not selfcheck(tmp_path).has("SP901")


class TestBaselineRegistration:
    def test_sp902_unregistered_engine(self, tmp_path):
        write_tree(tmp_path, {
            "baselines/rogue.py": """
                class RogueEngine:
                    def run(self, profile, prep, paper_nnz=None):
                        return None
            """,
        })
        assert selfcheck(tmp_path).has("SP902")

    def test_registered_engine_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "baselines/good.py": """
                from repro.engine.registry import register_arch

                @register_arch("good", description="ok")
                class GoodEngine:
                    def run(self, profile, prep, paper_nnz=None):
                        return None
            """,
        })
        assert not selfcheck(tmp_path).has("SP902")

    def test_helper_module_without_engines_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "baselines/util.py": "def helper():\n    return 1\n",
        })
        assert not selfcheck(tmp_path).has("SP902")


class TestCacheKeyFields:
    def test_sp903_field_missing_from_cache_key(self, tmp_path):
        write_tree(tmp_path, {
            "config.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Cfg:
                    lanes: int = 8
                    buffer_kb: int = 512

                    def cache_key(self):
                        return str(self.lanes)  # forgets buffer_kb
            """,
        })
        report = selfcheck(tmp_path)
        assert report.has("SP903")
        assert "buffer_kb" in str(report.errors[0])

    def test_asdict_wholesale_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "config.py": """
                from dataclasses import asdict, dataclass

                @dataclass(frozen=True)
                class Cfg:
                    lanes: int = 8
                    buffer_kb: int = 512

                    def cache_key(self):
                        return str(sorted(asdict(self).items()))
            """,
        })
        assert not selfcheck(tmp_path).has("SP903")

    def test_explicit_every_field_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "config.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Cfg:
                    lanes: int = 8
                    buffer_kb: int = 512

                    def cache_key(self):
                        return f"{self.lanes}-{self.buffer_kb}"
            """,
        })
        assert not selfcheck(tmp_path).has("SP903")

    def test_dataclass_without_cache_key_is_ignored(self, tmp_path):
        write_tree(tmp_path, {
            "config.py": """
                from dataclasses import dataclass

                @dataclass
                class Plain:
                    x: int = 0
            """,
        })
        assert not selfcheck(tmp_path).has("SP903")


class TestDeterminism:
    def test_sp904_random_import_in_hot_path(self, tmp_path):
        write_tree(tmp_path, {"arch/sim.py": "import random\n"})
        assert selfcheck(tmp_path).has("SP904")

    def test_sp904_unseeded_default_rng(self, tmp_path):
        write_tree(tmp_path, {
            "oei/exec.py": """
                import numpy as np
                rng = np.random.default_rng()
            """,
        })
        assert selfcheck(tmp_path).has("SP904")

    def test_seeded_default_rng_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "oei/exec.py": """
                import numpy as np
                rng = np.random.default_rng(7)
            """,
        })
        assert not selfcheck(tmp_path).has("SP904")

    def test_sp904_wall_clock_in_hot_path(self, tmp_path):
        write_tree(tmp_path, {
            "engine/timer.py": """
                import time

                def stamp():
                    return time.perf_counter()
            """,
        })
        assert selfcheck(tmp_path).has("SP904")

    def test_wall_clock_outside_hot_path_is_allowed(self, tmp_path):
        write_tree(tmp_path, {
            "experiments/bench.py": """
                import time

                def stamp():
                    return time.perf_counter()
            """,
        })
        assert not selfcheck(tmp_path).has("SP904")


class TestStepLoops:
    def test_sp905_step_loop_outside_reference_backend(self, tmp_path):
        write_tree(tmp_path, {
            "arch/shiny.py": """
                def walk(plan):
                    total = 0.0
                    for s in range(plan.n_steps):
                        total += s
                    return total
            """,
        })
        assert selfcheck(tmp_path).has("SP905")

    def test_reference_backend_may_loop_over_steps(self, tmp_path):
        write_tree(tmp_path, {
            "arch/simulator.py": """
                def walk(plan):
                    for s in range(plan.n_steps):
                        pass
            """,
        })
        assert not selfcheck(tmp_path).has("SP905")

    def test_plain_range_loops_are_clean(self, tmp_path):
        write_tree(tmp_path, {
            "arch/other.py": """
                def walk(plan):
                    for s in range(plan.n_subtensors):
                        pass
                    for k in range(10):
                        pass
            """,
        })
        assert not selfcheck(tmp_path).has("SP905")

    def test_step_loops_outside_arch_are_out_of_scope(self, tmp_path):
        write_tree(tmp_path, {
            "oei/schedule.py": """
                def walk(schedule):
                    for s in range(schedule.n_steps):
                        pass
            """,
        })
        assert not selfcheck(tmp_path).has("SP905")


class TestBackendPins:
    def test_sp906_reference_backend_pin(self, tmp_path):
        write_tree(tmp_path, {
            "experiments/fig.py": """
                def drive(context, points):
                    return context.simulate_many(points, backend="reference")
            """,
        })
        assert selfcheck(tmp_path).has("SP906")

    def test_sp906_pin_in_config_construction(self, tmp_path):
        write_tree(tmp_path, {
            "obs/capture.py": """
                from repro.arch.config import SparsepipeConfig

                def snapshot(profile, prep):
                    cfg = SparsepipeConfig(backend="reference")
                    return cfg
            """,
        })
        assert selfcheck(tmp_path).has("SP906")

    def test_vectorized_pin_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "experiments/fig.py": """
                def drive(context, points):
                    return context.simulate_many(points, backend="vectorized")
            """,
        })
        assert not selfcheck(tmp_path).has("SP906")

    def test_backend_variable_passthrough_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "experiments/fig.py": """
                def drive(context, points, backend):
                    return context.simulate_many(points, backend=backend)
            """,
        })
        assert not selfcheck(tmp_path).has("SP906")


class TestResilienceDeterminism:
    """SP904's hot-path scope now includes resilience/ — the fault
    injector must stay seed-derived."""

    def test_sp904_fires_in_resilience(self, tmp_path):
        write_tree(tmp_path, {
            "resilience/chaos.py": """
                import numpy as np
                rng = np.random.default_rng()
            """,
        })
        assert selfcheck(tmp_path).has("SP904")

    def test_sp904_wall_clock_in_resilience(self, tmp_path):
        write_tree(tmp_path, {
            "resilience/sup.py": """
                import time

                def stamp():
                    return time.monotonic()
            """,
        })
        assert selfcheck(tmp_path).has("SP904")


class TestPoolGlobals:
    def test_sp911_global_mutated_outside_initializer(self, tmp_path):
        write_tree(tmp_path, {
            "engine/state.py": """
                _CACHE = None

                def set_cache(cache):
                    global _CACHE
                    _CACHE = cache
            """,
        })
        report = selfcheck(tmp_path)
        assert report.has("SP911")
        assert "_CACHE" in str(report.errors[0])

    def test_initializer_style_mutators_are_sanctioned(self, tmp_path):
        write_tree(tmp_path, {
            "engine/state.py": """
                _CACHE = None
                _LOADED = False

                def _init_worker_context(cache):
                    global _CACHE
                    _CACHE = cache

                def _ensure_builtin():
                    global _LOADED
                    _LOADED = True

                def install_hooks():
                    global _CACHE
                    _CACHE = {}
            """,
        })
        assert not selfcheck(tmp_path).has("SP911")

    def test_sp911_out_of_scope_outside_service_arc(self, tmp_path):
        write_tree(tmp_path, {
            "formats/reader.py": """
                _STATE = None

                def set_state(x):
                    global _STATE
                    _STATE = x
            """,
        })
        assert not selfcheck(tmp_path).has("SP911")


class TestAtomicWrites:
    def test_sp912_bare_write_text(self, tmp_path):
        write_tree(tmp_path, {
            "engine/cache.py": """
                def put(path, payload):
                    path.write_text(payload)
            """,
        })
        assert selfcheck(tmp_path).has("SP912")

    def test_sp912_json_dump_to_w_handle(self, tmp_path):
        write_tree(tmp_path, {
            "resilience/manifest.py": """
                import json

                def save(path, doc):
                    with open(path, "w") as fh:
                        json.dump(doc, fh)
            """,
        })
        assert selfcheck(tmp_path).has("SP912")

    def test_tmp_rename_protocol_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "engine/cache.py": """
                import os

                def put(path, payload):
                    tmp = path.with_suffix(f".{os.getpid()}.tmp")
                    tmp.write_text(payload)
                    tmp.replace(path)
            """,
        })
        assert not selfcheck(tmp_path).has("SP912")

    def test_read_only_open_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "engine/cache.py": """
                import json

                def get(path):
                    with open(path, "r") as fh:
                        return json.load(fh)
            """,
        })
        assert not selfcheck(tmp_path).has("SP912")

    def test_fault_injector_is_exempt(self, tmp_path):
        write_tree(tmp_path, {
            "resilience/faults.py": """
                def corrupt(path):
                    path.write_text("garbage")
            """,
        })
        assert not selfcheck(tmp_path).has("SP912")


class TestBlockingWaits:
    def test_sp913_time_sleep_poll(self, tmp_path):
        write_tree(tmp_path, {
            "resilience/supervisor.py": """
                import time

                def wait_for(flag):
                    while not flag():
                        time.sleep(0.1)
            """,
        })
        assert selfcheck(tmp_path).has("SP913")

    def test_sp913_unbounded_future_result(self, tmp_path):
        write_tree(tmp_path, {
            "engine/parallel.py": """
                def drain(futures):
                    return [f.result() for f in futures]
            """,
        })
        assert selfcheck(tmp_path).has("SP913")

    def test_timeout_result_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "engine/parallel.py": """
                def drain(futures, timeout_s):
                    return [f.result(timeout=timeout_s) for f in futures]
            """,
        })
        assert not selfcheck(tmp_path).has("SP913")

    def test_sleep_outside_supervisor_scope_is_allowed(self, tmp_path):
        # (SP913's scope is supervisors; SP904 separately owns clocks.)
        write_tree(tmp_path, {
            "experiments/demo.py": """
                import time

                def pause():
                    time.sleep(1)
            """,
        })
        assert not selfcheck(tmp_path).has("SP913")


class TestPoolConfinement:
    def test_sp914_from_import_outside_backend(self, tmp_path):
        write_tree(tmp_path, {
            "resilience/supervisor.py": """
                from concurrent.futures import ProcessPoolExecutor

                def fan_out(fn, items):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(fn, items))
            """,
        })
        assert selfcheck(tmp_path).has("SP914")

    def test_sp914_attribute_use_outside_backend(self, tmp_path):
        write_tree(tmp_path, {
            "engine/parallel.py": """
                import concurrent.futures

                def fan_out(fn, items):
                    pool = concurrent.futures.ProcessPoolExecutor()
                    return list(pool.map(fn, items))
            """,
        })
        assert selfcheck(tmp_path).has("SP914")

    def test_localpool_backend_may_name_the_pool(self, tmp_path):
        write_tree(tmp_path, {
            "scheduler/localpool.py": """
                from concurrent.futures import ProcessPoolExecutor

                def fan_out(fn, items):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(fn, items))
            """,
        })
        assert not selfcheck(tmp_path).has("SP914")

    def test_sp914_other_scheduler_modules_are_not_exempt(self, tmp_path):
        write_tree(tmp_path, {
            "scheduler/base.py": """
                from concurrent.futures import ProcessPoolExecutor
            """,
        })
        assert selfcheck(tmp_path).has("SP914")

    def test_sp914_confinement_is_repo_wide(self, tmp_path):
        # Unlike the supervisor-scoped rules, SP914 has no include
        # list: a pool smuggled into *any* module dodges the scheduler
        # protocol, so the whole tree is in scope.
        write_tree(tmp_path, {
            "analysis/offline_tool.py": """
                from concurrent.futures import ProcessPoolExecutor
            """,
        })
        assert selfcheck(tmp_path).has("SP914")


class TestPassFramework:
    def test_passes_subset_restricts_rules(self, tmp_path):
        from repro.analysis.selfcheck import PASSES

        write_tree(tmp_path, {
            "engine/bad.py": """
                import scipy

                def set_cache(cache):
                    global _CACHE
                    _CACHE = cache
            """,
        })
        sp901 = [p for p in PASSES if p.code == "SP901"]
        report = selfcheck(tmp_path, passes=sp901)
        assert report.has("SP901")
        assert not report.has("SP911")  # SP911 pass not run

    def test_applies_honors_include_exclude(self):
        from repro.analysis.selfcheck import PASSES

        by_code = {p.code: p for p in PASSES}
        assert by_code["SP905"].applies("arch/fastpath.py")
        assert not by_code["SP905"].applies("arch/simulator.py")
        assert by_code["SP912"].applies("resilience/cachemon.py")
        assert not by_code["SP912"].applies("resilience/faults.py")
        assert by_code["SP904"].applies("resilience/faults.py")
        assert not by_code["SP911"].applies("arch/simulator.py")
        assert not by_code["SP902"].applies("baselines/__init__.py")

    def test_every_pass_code_is_registered(self):
        from repro.analysis.diagnostics import CODES
        from repro.analysis.selfcheck import PASSES

        for p in PASSES:
            assert p.code in CODES, p.code


class TestRegistryDuplicates:
    def test_register_code_rejects_duplicates(self):
        from repro.analysis.diagnostics import CODES, CodeSpec, register_code
        from repro.errors import Severity

        spec = CODES["SP901"]
        dup = CodeSpec("SP901", "impostor", Severity.WARNING, "nope")
        with pytest.raises(ValueError, match="duplicate diagnostic code"):
            register_code(dup)
        # The original registration is untouched.
        assert CODES["SP901"] is spec

    def test_register_code_accepts_fresh_code(self):
        from repro.analysis.diagnostics import CODES, CodeSpec, register_code
        from repro.errors import Severity

        fresh = CodeSpec("SP999", "test-only", Severity.WARNING, "scratch")
        try:
            assert register_code(fresh) is fresh
            assert CODES["SP999"] is fresh
        finally:
            CODES.pop("SP999", None)
