"""Tests for the AST self-lint (repro.analysis.selfcheck)."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.selfcheck import selfcheck


def write_tree(root: Path, files: dict) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


class TestRealTree:
    def test_library_is_clean(self):
        report = selfcheck()
        assert report.ok, report.format()

    def test_library_has_no_warnings_either(self):
        assert len(selfcheck()) == 0


class TestForbiddenImports:
    def test_sp901_scipy_import(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "import scipy.sparse\n"})
        report = selfcheck(tmp_path)
        assert report.has("SP901")

    def test_sp901_networkx_from_import(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "from networkx import DiGraph\n"})
        assert selfcheck(tmp_path).has("SP901")

    def test_numpy_is_allowed(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "import numpy as np\n"})
        assert not selfcheck(tmp_path).has("SP901")


class TestBaselineRegistration:
    def test_sp902_unregistered_engine(self, tmp_path):
        write_tree(tmp_path, {
            "baselines/rogue.py": """
                class RogueEngine:
                    def run(self, profile, prep, paper_nnz=None):
                        return None
            """,
        })
        assert selfcheck(tmp_path).has("SP902")

    def test_registered_engine_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "baselines/good.py": """
                from repro.engine.registry import register_arch

                @register_arch("good", description="ok")
                class GoodEngine:
                    def run(self, profile, prep, paper_nnz=None):
                        return None
            """,
        })
        assert not selfcheck(tmp_path).has("SP902")

    def test_helper_module_without_engines_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "baselines/util.py": "def helper():\n    return 1\n",
        })
        assert not selfcheck(tmp_path).has("SP902")


class TestCacheKeyFields:
    def test_sp903_field_missing_from_cache_key(self, tmp_path):
        write_tree(tmp_path, {
            "config.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Cfg:
                    lanes: int = 8
                    buffer_kb: int = 512

                    def cache_key(self):
                        return str(self.lanes)  # forgets buffer_kb
            """,
        })
        report = selfcheck(tmp_path)
        assert report.has("SP903")
        assert "buffer_kb" in str(report.errors[0])

    def test_asdict_wholesale_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "config.py": """
                from dataclasses import asdict, dataclass

                @dataclass(frozen=True)
                class Cfg:
                    lanes: int = 8
                    buffer_kb: int = 512

                    def cache_key(self):
                        return str(sorted(asdict(self).items()))
            """,
        })
        assert not selfcheck(tmp_path).has("SP903")

    def test_explicit_every_field_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "config.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Cfg:
                    lanes: int = 8
                    buffer_kb: int = 512

                    def cache_key(self):
                        return f"{self.lanes}-{self.buffer_kb}"
            """,
        })
        assert not selfcheck(tmp_path).has("SP903")

    def test_dataclass_without_cache_key_is_ignored(self, tmp_path):
        write_tree(tmp_path, {
            "config.py": """
                from dataclasses import dataclass

                @dataclass
                class Plain:
                    x: int = 0
            """,
        })
        assert not selfcheck(tmp_path).has("SP903")


class TestDeterminism:
    def test_sp904_random_import_in_hot_path(self, tmp_path):
        write_tree(tmp_path, {"arch/sim.py": "import random\n"})
        assert selfcheck(tmp_path).has("SP904")

    def test_sp904_unseeded_default_rng(self, tmp_path):
        write_tree(tmp_path, {
            "oei/exec.py": """
                import numpy as np
                rng = np.random.default_rng()
            """,
        })
        assert selfcheck(tmp_path).has("SP904")

    def test_seeded_default_rng_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "oei/exec.py": """
                import numpy as np
                rng = np.random.default_rng(7)
            """,
        })
        assert not selfcheck(tmp_path).has("SP904")

    def test_sp904_wall_clock_in_hot_path(self, tmp_path):
        write_tree(tmp_path, {
            "engine/timer.py": """
                import time

                def stamp():
                    return time.perf_counter()
            """,
        })
        assert selfcheck(tmp_path).has("SP904")

    def test_wall_clock_outside_hot_path_is_allowed(self, tmp_path):
        write_tree(tmp_path, {
            "experiments/bench.py": """
                import time

                def stamp():
                    return time.perf_counter()
            """,
        })
        assert not selfcheck(tmp_path).has("SP904")


class TestStepLoops:
    def test_sp905_step_loop_outside_reference_backend(self, tmp_path):
        write_tree(tmp_path, {
            "arch/shiny.py": """
                def walk(plan):
                    total = 0.0
                    for s in range(plan.n_steps):
                        total += s
                    return total
            """,
        })
        assert selfcheck(tmp_path).has("SP905")

    def test_reference_backend_may_loop_over_steps(self, tmp_path):
        write_tree(tmp_path, {
            "arch/simulator.py": """
                def walk(plan):
                    for s in range(plan.n_steps):
                        pass
            """,
        })
        assert not selfcheck(tmp_path).has("SP905")

    def test_plain_range_loops_are_clean(self, tmp_path):
        write_tree(tmp_path, {
            "arch/other.py": """
                def walk(plan):
                    for s in range(plan.n_subtensors):
                        pass
                    for k in range(10):
                        pass
            """,
        })
        assert not selfcheck(tmp_path).has("SP905")

    def test_step_loops_outside_arch_are_out_of_scope(self, tmp_path):
        write_tree(tmp_path, {
            "oei/schedule.py": """
                def walk(schedule):
                    for s in range(schedule.n_steps):
                        pass
            """,
        })
        assert not selfcheck(tmp_path).has("SP905")
