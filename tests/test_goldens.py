"""Golden regression fixtures: frozen SimResult + metrics digests.

One golden file per fig workload (``tests/goldens/<workload>.json``)
freezes the full :meth:`SimResult.to_dict` document and the metrics
digest for the Sparsepipe simulator on the smallest suite matrix, under
the zero-observer contract — so both backends are checked against the
same frozen numbers. A failing golden prints a field-level diff (not
two opaque hashes); regenerate deliberately with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

Any diff here means the performance model's numbers moved — either a
bug, or an intentional model change that must re-freeze the goldens in
the same commit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.arch.config import SparsepipeConfig
from repro.arch.simulator import SparsepipeSimulator
from repro.experiments.runner import ExperimentContext
from repro.matrices.suite import SUITE
from repro.obs.metrics import registry_from_result
from repro.testing import diff_docs, digest
from repro.workloads.registry import workload_names

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The golden matrix: the smallest suite member, so the fixtures stay
#: cheap enough for tier-1.
MATRIX = "gy"

WORKLOADS = tuple(workload_names())


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(workloads=WORKLOADS, matrices=(MATRIX,))


def _golden_doc(context, workload: str, backend: str) -> dict:
    profile = context.profile(workload, MATRIX)
    prep = context.prepared(MATRIX)
    result = SparsepipeSimulator(SparsepipeConfig(backend=backend)).run(
        profile, prep, paper_nnz=SUITE[MATRIX].paper_nnz, observers=()
    )
    metrics = registry_from_result(result)
    return {
        "workload": workload,
        "matrix": MATRIX,
        "result": result.to_dict(),
        "metrics_digest": metrics.digest(),
    }


def _golden_path(workload: str) -> Path:
    return GOLDEN_DIR / f"{workload}.json"


@pytest.mark.parametrize("workload", WORKLOADS)
def test_golden(context, update_goldens, workload):
    actual = _golden_doc(context, workload, backend="vectorized")
    path = _golden_path(workload)
    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, sort_keys=True, indent=2) + "\n")
        return
    assert path.exists(), (
        f"missing golden {path.name}; generate it with --update-goldens"
    )
    expected = json.loads(path.read_text())
    diff = diff_docs(expected, actual)
    assert not diff, (
        f"golden mismatch for {workload}-{MATRIX} "
        f"({len(diff)} field(s) differ):\n" + "\n".join(diff)
    )
    # The digest is redundant with the field diff but pins the metrics
    # schema itself: a renamed counter fails here even if values match.
    assert expected["metrics_digest"] == actual["metrics_digest"]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_reference_backend_matches_golden(context, update_goldens, workload):
    """The frozen numbers hold for *both* backends — the golden is a
    regression pin and a cross-backend differential in one."""
    if update_goldens:
        pytest.skip("goldens are generated from the vectorized backend")
    path = _golden_path(workload)
    assert path.exists(), (
        f"missing golden {path.name}; generate it with --update-goldens"
    )
    expected = json.loads(path.read_text())
    actual = _golden_doc(context, workload, backend="reference")
    diff = diff_docs(expected, actual)
    assert not diff, (
        f"reference backend diverges from golden for {workload}-{MATRIX}:\n"
        + "\n".join(diff)
    )


def test_goldens_have_no_strays():
    """Every checked-in golden corresponds to a registered workload."""
    known = {f"{w}.json" for w in WORKLOADS}
    stray = [p.name for p in GOLDEN_DIR.glob("*.json") if p.name not in known]
    assert not stray, f"stray golden files: {stray}"


def test_digest_is_stable():
    doc = {"b": 2.0, "a": [1, {"c": 3.5}]}
    assert digest(doc) == digest(json.loads(json.dumps(doc)))
    assert digest(doc) != digest({"b": 2.0, "a": [1, {"c": 3.6}]})
