"""Tests for the design-space sweep and the pipeline renderer."""

import pytest

from repro.arch.config import SparsepipeConfig
from repro.arch.pipeline_viz import render_pipeline
from repro.arch.profile import WorkloadProfile
from repro.arch.sweep import ConfigSweep, SweepPoint
from repro.errors import ConfigError
from repro.matrices import banded_mesh
from repro.preprocess import preprocess


@pytest.fixture(scope="module")
def prep():
    return preprocess(banded_mesh(300, 10, 2500, seed=6), reorder=None, block_size=None)


@pytest.fixture(scope="module")
def profile():
    return WorkloadProfile(
        name="pr", semiring_name="mul_add", has_oei=True, n_iterations=8,
        path_ewise_ops=2,
    )


class TestConfigSweep:
    def test_grid_evaluates_all_combinations(self, prep, profile):
        sweep = ConfigSweep(SparsepipeConfig(subtensor_cols=32))
        points = sweep.run(
            profile, prep,
            {"buffer_bytes": [64 * 1024, 256 * 1024], "pes_per_core": [256, 1024]},
        )
        assert len(points) == 4
        assert len({(p.config.buffer_bytes, p.config.pes_per_core) for p in points}) == 4

    def test_unknown_field_rejected(self, prep, profile):
        with pytest.raises(ConfigError):
            ConfigSweep().run(profile, prep, {"warp_size": [32]})

    def test_empty_grid_rejected(self, prep, profile):
        with pytest.raises(ConfigError):
            ConfigSweep().run(profile, prep, {})

    def test_area_grows_with_pes(self, prep, profile):
        sweep = ConfigSweep(SparsepipeConfig(subtensor_cols=32, buffer_bytes=64 * 1024))
        points = sweep.run(profile, prep, {"pes_per_core": [128, 2048]})
        by_pes = {p.config.pes_per_core: p for p in points}
        assert by_pes[2048].area_mm2 > by_pes[128].area_mm2

    def test_pareto_frontier_is_nondominated(self, prep, profile):
        sweep = ConfigSweep(SparsepipeConfig(subtensor_cols=32))
        points = sweep.run(
            profile, prep,
            {"buffer_bytes": [16 * 1024, 64 * 1024, 512 * 1024],
             "pes_per_core": [128, 1024]},
        )
        frontier = ConfigSweep.pareto_frontier(points)
        assert frontier
        for p in frontier:
            assert not any(q.dominates(p) for q in points)
        # Frontier sorted by cycles.
        cycles = [p.cycles for p in frontier]
        assert cycles == sorted(cycles)

    def test_dominance_definition(self, prep, profile):
        sweep = ConfigSweep(SparsepipeConfig(subtensor_cols=32))
        points = sweep.run(profile, prep, {"buffer_bytes": [64 * 1024]})
        p = points[0]
        assert not p.dominates(p)  # strict dominance


class TestPipelineViz:
    def test_contains_all_stages(self):
        text = render_pipeline(100, 16)
        for stage in ("csc load", "os", "e-wise", "is"):
            assert stage in text

    def test_stage_skew_visible(self):
        text = render_pipeline(64, 16, max_steps=6)
        lines = {
            line.split()[0]: line for line in text.splitlines()[2:]
        }
        # At step 0: loader on sub-tensor 1, OS on 0, others idle.
        assert lines["os"].split()[1] == "0"
        assert lines["e-wise"].split()[1] == "."
        assert lines["is"].split()[1] == "."
        assert lines["csc"].split()[2] == "1"

    def test_truncation_notice(self):
        text = render_pipeline(10_000, 16, max_steps=8)
        assert "steps total" in text

    def test_small_matrix_fits(self):
        text = render_pipeline(8, 16)
        assert "0" in text
