"""Unit tests for simulator components: config, memory, cores, buffer,
load plans, prefetcher, energy, area."""

import numpy as np
import pytest

from repro.arch.area import (
    AreaModel,
    PAPER_BUFFER_SHARE,
    PAPER_SPARSEPIPE_AREA_MM2,
)
from repro.arch.buffer import OnChipBuffer
from repro.arch.config import (
    CPU_DDR4,
    GPU_GDDR6X,
    MemoryConfig,
    SparsepipeConfig,
    scaled_buffer_bytes,
)
from repro.arch.cores import ComputePipeline
from repro.arch.energy import EnergyModel
from repro.arch.loaders import EagerPrefetcher, LoadPlan
from repro.arch.memory import MemoryController
from repro.arch.profile import WorkloadProfile
from repro.arch.stats import StepTrace, TrafficBreakdown
from repro.errors import BufferError_, ConfigError
from repro.formats.coo import COOMatrix
from tests.conftest import random_coo


class TestConfig:
    def test_table_ii_presets(self):
        assert CPU_DDR4.bandwidth_gbps == 40.0
        assert CPU_DDR4.read_latency_ns == 13.75
        assert GPU_GDDR6X.bandwidth_gbps == 504.0
        assert GPU_GDDR6X.write_latency_ns == 5.0

    def test_bytes_per_cycle(self):
        assert GPU_GDDR6X.bytes_per_cycle(1.0) == 504.0
        assert GPU_GDDR6X.bytes_per_cycle(2.0) == 252.0

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigError):
            MemoryConfig("bad", -1.0, 1.0, 1.0, "X")

    def test_scaled_buffer_preserves_ratio(self):
        paper = 64 * 1024 * 1024
        assert scaled_buffer_bytes(1000, 1000000) == pytest.approx(
            paper / 1000, rel=0.01
        )

    def test_scaled_buffer_floor(self):
        assert scaled_buffer_bytes(1, 10**9) == 4096

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SparsepipeConfig(pes_per_core=0)
        with pytest.raises(ConfigError):
            SparsepipeConfig(subtensor_cols=0)
        with pytest.raises(ConfigError):
            SparsepipeConfig(csr_window_fraction=0.0)
        with pytest.raises(ConfigError):
            SparsepipeConfig(dram_efficiency=1.5)

    def test_with_memory_swaps_only_memory(self):
        cfg = SparsepipeConfig()
        iso_cpu = cfg.with_memory(CPU_DDR4)
        assert iso_cpu.memory is CPU_DDR4
        assert iso_cpu.pes_per_core == cfg.pes_per_core

    def test_seconds(self):
        cfg = SparsepipeConfig(clock_ghz=2.0)
        assert cfg.seconds(2e9) == 1.0


class TestMemoryController:
    def test_cycles_include_dram_efficiency(self):
        cfg = SparsepipeConfig(dram_efficiency=0.5)
        mem = MemoryController(cfg)
        assert mem.cycles_for(504.0) == pytest.approx(2.0)

    def test_transfer_records_traffic(self):
        mem = MemoryController(SparsepipeConfig())
        mem.transfer("csc", 100.0)
        mem.transfer("vector", 50.0)
        assert mem.traffic.total_bytes == 150.0
        assert mem.traffic.matrix_bytes == 100.0

    def test_unknown_category(self):
        mem = MemoryController(SparsepipeConfig())
        with pytest.raises(KeyError):
            mem.transfer("bogus", 1.0)

    def test_negative_bytes(self):
        mem = MemoryController(SparsepipeConfig())
        with pytest.raises(ValueError):
            mem.cycles_for(-1.0)


class TestComputePipeline:
    def test_os_cycles_spread_over_pes(self):
        cores = ComputePipeline(SparsepipeConfig(pes_per_core=100))
        assert cores.os_cycles(250) == 3
        assert cores.os_cycles(0) == 0.0

    def test_feature_dim_multiplies(self):
        cores = ComputePipeline(SparsepipeConfig(pes_per_core=100))
        assert cores.os_cycles(100, feature_dim=4) == 4

    def test_ewise_cycles_scale_with_ops(self):
        cores = ComputePipeline(SparsepipeConfig(pes_per_core=64))
        assert cores.ewise_cycles(64, n_ops=3) == 3
        assert cores.ewise_cycles(64, n_ops=0) == 0.0

    def test_tree_depth_log2(self):
        cores = ComputePipeline(SparsepipeConfig(pes_per_core=1024))
        assert cores.tree_depth == 10


class TestOnChipBuffer:
    def _buffer(self, capacity=120.0, fraction=1.0, el=12.0):
        return OnChipBuffer(capacity, fraction, el, repack_threshold=0.5)

    def test_admit_release_balance(self):
        buf = self._buffer()
        buf.admit({5: 4, 7: 2})
        assert buf.live_bytes == 6 * 12
        assert buf.release(5) == 4
        assert buf.release(7) == 2
        buf.drain_check()

    def test_peak_tracking(self):
        buf = self._buffer(capacity=1000.0)
        buf.admit({3: 5})
        buf.admit({4: 5})
        assert buf.peak_bytes == 10 * 12

    def test_oom_evicts_furthest_and_schedules_reload(self):
        buf = self._buffer(capacity=60.0)  # 5 elements
        buf.admit({10: 4, 20: 4})
        evicted = buf.enforce_capacity(current_step=0)
        assert evicted == 3 * 12  # down to 5 resident
        assert buf.pop_reload(20) == 3 * 12
        assert buf.pop_reload(10) == 0.0

    def test_eviction_never_takes_current_step(self):
        buf = self._buffer(capacity=12.0)
        buf.admit({3: 5})
        evicted = buf.enforce_capacity(current_step=3)
        assert evicted == 0.0  # everything needed now; nothing sane to evict

    def test_negative_admit_rejected(self):
        buf = self._buffer()
        with pytest.raises(BufferError_):
            buf.admit({1: -1})

    def test_drain_check_catches_leftovers(self):
        buf = self._buffer()
        buf.admit({9: 1})
        with pytest.raises(BufferError_):
            buf.drain_check()

    def test_slack_counts_prefetch(self):
        buf = self._buffer(capacity=100.0)
        buf.prefetch_resident_bytes = 40.0
        assert buf.slack_bytes() == 60.0

    def test_repack_events_fire(self):
        buf = self._buffer(capacity=10000.0)
        buf.admit({1: 10, 9: 2})
        buf.release(1)
        assert buf.repack_events >= 1


class TestLoadPlan:
    def test_structure_totals(self):
        coo = random_coo(3, n=40)
        plan = LoadPlan.from_matrix(coo, subtensor_cols=8)
        assert plan.n_subtensors == 5
        assert plan.n_steps == 7
        assert plan.os_nnz.sum() == coo.nnz
        assert plan.scatter_nnz.sum() == coo.nnz
        assert plan.matrix_stream_bytes == coo.nnz * 12.0

    def test_enter_counts_exclude_immediate(self):
        # Element (0, 30): load step 3, scatter step max(3, 0+2)=3 ->
        # immediate, never enters the window.
        coo = COOMatrix((40, 40), np.array([0]), np.array([30]), np.ones(1))
        plan = LoadPlan.from_matrix(coo, subtensor_cols=10)
        assert all(not c for c in plan.enter_counts)

    def test_enter_counts_cover_waiting_elements(self):
        # Element (35, 0): load 0, scatter 3+2=5.
        coo = COOMatrix((40, 40), np.array([35]), np.array([0]), np.ones(1))
        plan = LoadPlan.from_matrix(coo, subtensor_cols=10)
        assert plan.enter_counts[0] == {5: 1}

    def test_subtensor_widths(self):
        coo = random_coo(4, n=37)
        plan = LoadPlan.from_matrix(coo, subtensor_cols=10)
        assert list(plan.subtensor_width) == [10, 10, 10, 7]

    def test_rejects_rectangular(self):
        with pytest.raises(ConfigError):
            LoadPlan.from_matrix(COOMatrix.empty((3, 5)), subtensor_cols=2)

    def test_element_bytes_from_preprocess(self):
        from repro.preprocess import preprocess

        coo = random_coo(5, n=60, density=0.2)
        blocked = preprocess(coo, reorder=None, block_size=16)
        naive = preprocess(coo, reorder=None, block_size=None)
        plan_b = LoadPlan.from_matrix(blocked, subtensor_cols=8)
        plan_n = LoadPlan.from_matrix(naive, subtensor_cols=8)
        assert plan_b.element_bytes < plan_n.element_bytes


class TestEagerPrefetcher:
    def test_prefetch_reduces_future_demand(self):
        coo = random_coo(6, n=40)
        plan = LoadPlan.from_matrix(coo, subtensor_cols=8)
        pf = EagerPrefetcher(plan, enabled=True)
        future = float(plan.csc_bytes[2])
        moved = pf.prefetch(current=1, budget_bytes=future, slack_bytes=1e9)
        assert moved == pytest.approx(future)
        assert pf.demand(2) == 0.0
        assert pf.release_at(2) == pytest.approx(future)

    def test_prefetch_respects_slack(self):
        coo = random_coo(7, n=40)
        plan = LoadPlan.from_matrix(coo, subtensor_cols=8)
        pf = EagerPrefetcher(plan, enabled=True)
        assert pf.prefetch(0, budget_bytes=1e9, slack_bytes=10.0) <= 10.0

    def test_disabled_prefetcher_never_moves(self):
        coo = random_coo(8, n=40)
        plan = LoadPlan.from_matrix(coo, subtensor_cols=8)
        pf = EagerPrefetcher(plan, enabled=False)
        assert pf.prefetch(0, 1e9, 1e9) == 0.0

    def test_demand_consumed_once(self):
        coo = random_coo(9, n=40)
        plan = LoadPlan.from_matrix(coo, subtensor_cols=8)
        pf = EagerPrefetcher(plan, enabled=True)
        first = pf.demand(1)
        assert first > 0
        assert pf.demand(1) == 0.0


class TestStats:
    def test_traffic_merge(self):
        a, b = TrafficBreakdown(), TrafficBreakdown()
        a.add("csc", 10)
        b.add("csc", 5)
        b.add("vector", 2)
        merged = a.merged(b)
        assert merged.bytes_by_category["csc"] == 15
        assert merged.total_bytes == 17

    def test_samples_bins_sum_to_total(self):
        trace = StepTrace()
        for i in range(50):
            trace.record(10.0, {"csc": 100.0})
        samples = trace.samples(bytes_per_cycle=504.0, n_bins=25)
        assert len(samples) == 25
        assert samples[-1].progress == 1.0
        for s in samples:
            assert 0.0 <= s.utilization <= 1.0

    def test_empty_trace(self):
        assert StepTrace().samples(504.0) == []


class TestEnergyArea:
    def test_area_calibration_matches_paper(self):
        model = AreaModel()
        total = model.sparsepipe_mm2()
        assert total == pytest.approx(PAPER_SPARSEPIPE_AREA_MM2, rel=0.01)
        assert model.buffer_share() == pytest.approx(PAPER_BUFFER_SHARE, abs=0.01)

    def test_area_scales_with_buffer(self):
        model = AreaModel()
        assert model.sparsepipe_mm2(buffer_mb=32) < model.sparsepipe_mm2(buffer_mb=64)

    def test_perf_per_area(self):
        model = AreaModel()
        assert model.perf_per_area(2.0, 100.0) == 0.02
        with pytest.raises(ValueError):
            model.perf_per_area(1.0, 0.0)

    def test_energy_breakdown(self):
        from repro.arch.stats import SimResult

        result = SimResult(
            name="t", cycles=1.0, seconds=1.0, traffic=TrafficBreakdown(),
            bandwidth_utilization=0.0, bandwidth_samples=[], compute_ops=1e12,
            buffer_peak_bytes=0, oom_evicted_bytes=0, repack_events=0,
            n_iterations=1, sram_access_bytes=1e12,
        )
        result.traffic.add("csc", 1e12)
        breakdown = EnergyModel().evaluate(result)
        assert breakdown.compute_j == pytest.approx(0.8)
        assert breakdown.memory_j == pytest.approx(15.0)
        assert breakdown.buffer_j == pytest.approx(1.0)
        assert breakdown.total_j == pytest.approx(16.8)
