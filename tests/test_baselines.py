"""Unit tests for the baseline architecture models."""

import pytest

from repro.arch.config import SparsepipeConfig
from repro.arch.profile import WorkloadProfile
from repro.baselines import (
    CPUModel,
    GPUModel,
    IdealAccelerator,
    OracleAccelerator,
    SoftwareOEIModel,
    fused_vector_bytes,
    unfused_vector_bytes,
)
from repro.baselines.roofline import iteration_compute_cycles, pair_vector_bytes
from repro.matrices import banded_mesh
from repro.preprocess import preprocess


@pytest.fixture(scope="module")
def prep():
    return preprocess(banded_mesh(500, 15, 4000, seed=9), reorder=None, block_size=None)


@pytest.fixture(scope="module")
def profile():
    return WorkloadProfile(
        name="pr", semiring_name="mul_add", has_oei=True, n_iterations=12,
        path_ewise_ops=2, side_ewise_ops=1, aux_streams=1,
    )


class TestTrafficFormulas:
    def test_unfused_exceeds_fused(self, profile):
        assert unfused_vector_bytes(100, profile, 0) > fused_vector_bytes(100, profile, 0)

    def test_kernel_per_op_exceeds_fused_ewise(self, profile):
        per_kernel = unfused_vector_bytes(100, profile, 0, fused_ewise=False)
        fused = unfused_vector_bytes(100, profile, 0, fused_ewise=True)
        assert per_kernel > fused

    def test_pair_cheaper_than_two_fused_iterations(self, profile):
        pair = pair_vector_bytes(100, profile, 0)
        two = 2 * fused_vector_bytes(100, profile, 0)
        assert pair < two  # the intermediate vector never leaves chip

    def test_activity_scales_traffic(self, profile):
        from dataclasses import replace

        sparse = replace(profile, activity=(0.1,))
        assert fused_vector_bytes(100, sparse, 0) < fused_vector_bytes(100, profile, 0)

    def test_compute_cycles_take_slowest_core(self, profile):
        # nnz dominates: 10_000 contraction ops vs 100*3 e-wise ops.
        cycles = iteration_compute_cycles(10_000, 100, profile, 0, pes_per_core=100)
        assert cycles == pytest.approx(100.0)


class TestOrderingInvariants:
    def test_oracle_fastest_then_sparsepipe_like_then_ideal(self, prep, profile):
        cfg = SparsepipeConfig(subtensor_cols=32)
        oracle = OracleAccelerator(cfg).run(profile, prep)
        ideal = IdealAccelerator(cfg).run(profile, prep)
        assert oracle.seconds < ideal.seconds

    def test_cpu_slower_than_gpu_on_large_matrix(self, prep, profile):
        # Scale so the matrix dwarfs both caches: pure bandwidth race.
        paper_nnz = prep.matrix.nnz * 10**6
        cpu = CPUModel().run(profile, prep, paper_nnz=paper_nnz)
        gpu = GPUModel().run(profile, prep, paper_nnz=paper_nnz)
        assert gpu.seconds < cpu.seconds

    def test_non_oei_profile_oracle_streams_per_iteration(self, prep, profile):
        from dataclasses import replace

        non_oei = replace(profile, has_oei=False)
        cfg = SparsepipeConfig(subtensor_cols=32)
        paired = OracleAccelerator(cfg).run(profile, prep)
        streamed = OracleAccelerator(cfg).run(non_oei, prep)
        assert streamed.traffic.matrix_bytes > paired.traffic.matrix_bytes

    def test_cache_scaling_affects_cpu(self, prep, profile):
        big_cache = CPUModel().run(profile, prep)  # paper-size LLC, fits
        tiny_cache = CPUModel().run(profile, prep, paper_nnz=prep.matrix.nnz * 10**6)
        assert big_cache.traffic.matrix_bytes < tiny_cache.traffic.matrix_bytes


class TestSoftwareOEI:
    def test_beats_plain_cpu_on_matrix_bound_workload(self, prep, profile):
        # Matrix far larger than the LLC: the CPU re-streams it every
        # iteration while software OEI streams once per pair.
        paper_nnz = prep.matrix.nnz * 10**6
        sw = SoftwareOEIModel().run(profile, prep, paper_nnz=paper_nnz)
        cpu = CPUModel().run(profile, prep, paper_nnz=paper_nnz)
        assert sw.traffic.matrix_bytes < cpu.traffic.matrix_bytes

    def test_loses_to_hardware_sparsepipe(self, prep, profile):
        from repro.arch.config import CPU_DDR4
        from repro.arch.simulator import SparsepipeSimulator

        paper_nnz = prep.matrix.nnz * 100
        sw = SoftwareOEIModel().run(profile, prep, paper_nnz=paper_nnz)
        hw = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=32).with_memory(CPU_DDR4)
        ).run(profile, prep, paper_nnz=paper_nnz)
        # Section II-B: software buffer management erodes the benefit.
        assert hw.seconds < sw.seconds

    def test_buffer_mgmt_ops_charged(self, prep, profile):
        cheap = SoftwareOEIModel(buffer_mgmt_ops_per_element=0.0).run(profile, prep)
        costly = SoftwareOEIModel(buffer_mgmt_ops_per_element=50.0).run(profile, prep)
        assert costly.compute_ops > cheap.compute_ops
        assert costly.seconds >= cheap.seconds
