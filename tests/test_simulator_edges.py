"""Edge-case and robustness tests for the Sparsepipe simulator."""

import numpy as np
import pytest

from repro.arch.config import SparsepipeConfig
from repro.arch.loaders import LoadPlan
from repro.arch.profile import WorkloadProfile
from repro.arch.simulator import SparsepipeSimulator
from repro.formats.coo import COOMatrix
from tests.conftest import random_coo


def profile(**overrides):
    base = dict(
        name="t", semiring_name="mul_add", has_oei=True, n_iterations=4,
        path_ewise_ops=1,
    )
    base.update(overrides)
    return WorkloadProfile(**base)


class TestDegenerateInputs:
    def test_empty_matrix(self):
        coo = COOMatrix.empty((20, 20))
        result = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=8)).run(
            profile(), coo
        )
        assert result.cycles > 0          # steps + fill latency still pass
        assert result.traffic.matrix_bytes == 0.0

    def test_subtensor_wider_than_matrix(self):
        coo = random_coo(1, n=20)
        result = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=512)).run(
            profile(), coo
        )
        assert result.cycles > 0

    def test_single_iteration_oei_runs_stream_pass(self):
        coo = random_coo(2, n=30)
        result = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=8)).run(
            profile(n_iterations=1), coo
        )
        plan = LoadPlan.from_matrix(coo, 8)
        assert result.traffic.matrix_bytes == pytest.approx(
            plan.matrix_stream_bytes
        )

    def test_zero_activity_iterations(self):
        coo = random_coo(3, n=30)
        result = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=8)).run(
            profile(activity=(0.0, 0.0, 0.0, 0.0)), coo
        )
        # Matrix still streams (structure traffic); vectors collapse.
        assert result.traffic.matrix_bytes > 0
        assert result.traffic.bytes_by_category["vector"] == 0.0

    def test_single_column_matrix(self):
        coo = COOMatrix((1, 1), np.array([0]), np.array([0]), np.array([2.0]))
        result = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=4)).run(
            profile(), coo
        )
        assert result.cycles > 0


class TestFeatureDim:
    def test_feature_dim_scales_vector_traffic(self):
        coo = random_coo(4, n=40)
        narrow = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=8)).run(
            profile(feature_dim=1), coo
        )
        wide = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=8)).run(
            profile(feature_dim=8), coo
        )
        assert wide.traffic.bytes_by_category["vector"] == pytest.approx(
            8 * narrow.traffic.bytes_by_category["vector"]
        )
        # Matrix traffic is feature-independent.
        assert wide.traffic.matrix_bytes == pytest.approx(narrow.traffic.matrix_bytes)

    def test_extra_ops_can_make_compute_bound(self):
        coo = random_coo(5, n=40)
        light = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=8)).run(
            profile(), coo
        )
        heavy = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=8)).run(
            profile(extra_ops_per_iteration=1e7), coo
        )
        assert heavy.cycles > light.cycles
        assert heavy.bandwidth_utilization < light.bandwidth_utilization


class TestPipelineFill:
    def test_fill_latency_charged_once_per_pair(self):
        coo = random_coo(6, n=40)
        cfg = SparsepipeConfig(subtensor_cols=8)
        two = SparsepipeSimulator(cfg).run(profile(n_iterations=2), coo)
        four = SparsepipeSimulator(cfg).run(profile(n_iterations=4), coo)
        # Doubling the pairs doubles everything including fill latency.
        assert four.cycles == pytest.approx(2 * two.cycles, rel=1e-9)

    def test_clock_scaling(self):
        coo = random_coo(7, n=40)
        slow = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=8, clock_ghz=1.0)
        ).run(profile(), coo)
        fast = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=8, clock_ghz=2.0)
        ).run(profile(), coo)
        # A faster clock never hurts wall-clock; memory-bound portions
        # need more cycles at the same bandwidth.
        assert fast.seconds <= slow.seconds
        assert fast.cycles >= slow.cycles


class TestBufferInteraction:
    def test_tiny_buffer_still_completes(self):
        coo = random_coo(8, n=60, density=0.3)
        result = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=4, buffer_bytes=4096)
        ).run(profile(n_iterations=6), coo)
        assert result.n_iterations == 6
        # Heavy eviction, but the run finishes and accounts reloads.
        assert result.traffic.bytes_by_category["csr_reload"] >= 0

    def test_csr_window_fraction_changes_pressure(self):
        coo = COOMatrix.from_dense(np.tril(np.ones((80, 80)), k=-1))
        cap = 20 * 1024
        small_window = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=8, buffer_bytes=cap,
                             csr_window_fraction=0.25)
        ).run(profile(), coo)
        big_window = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=8, buffer_bytes=cap,
                             csr_window_fraction=1.0)
        ).run(profile(), coo)
        assert small_window.oom_evicted_bytes >= big_window.oom_evicted_bytes
