"""Tests for the dataflow IR, fusion, OEI detection, and compiler."""

import numpy as np
import pytest

from repro.dataflow import (
    DataflowGraph,
    OpKind,
    OperandKind,
    analyze,
    classify_op,
    compile_program,
    find_oei_path,
    fuse_ewise,
)
from repro.dataflow.dependency import DependencyClass, is_subtensor
from repro.errors import CompileError


def pagerank_graph() -> DataflowGraph:
    g = DataflowGraph("pagerank")
    L = g.matrix("L")
    pr = g.vector("pr_next")
    y = g.vector("pr_nextnext")
    scaled = g.vector("scaled")
    new = g.vector("pr_new")
    g.scalar("teleport")
    g.vxm("spmv", pr, L, y, "mul_add")
    g.ewise("damp", "times", [y], scaled, immediate=0.85)
    g.ewise("tele", "plus", [scaled], new, scalar_operand="teleport")
    g.carry(new, pr)
    return g


def knn_graph() -> DataflowGraph:
    g = DataflowGraph("knn")
    m = g.matrix("M")
    v1, v2, v3 = g.vector("v1"), g.vector("v2"), g.vector("v3")
    g.vxm("hop1", v1, m, v2, "and_or")
    g.vxm("hop2", v2, m, v3, "and_or")
    g.carry(v3, v1)
    return g


def cg_like_graph() -> DataflowGraph:
    """A CG-style body: the vxm output feeds a *dot* (reduction) whose
    scalar gates the update — no legal OEI path."""
    g = DataflowGraph("cg")
    a = g.matrix("A")
    p, q = g.vector("p"), g.vector("q")
    alpha = g.scalar("alpha")
    x, x_new = g.vector("x"), g.vector("x_new")
    g.vxm("spmv", p, a, q, "mul_add")
    g.add_op(
        __import__("repro.dataflow.graph", fromlist=["OpNode"]).OpNode(
            "pq_dot", OpKind.DOT, (p, q), alpha, op_name="mul_add"
        )
    )
    g.ewise("axpy", "plus", [x], x_new, scalar_operand="alpha")
    return g


class TestGraphConstruction:
    def test_tensor_redeclaration_consistent(self):
        g = DataflowGraph("t")
        a = g.vector("a")
        assert g.vector("a") is a

    def test_tensor_redeclaration_conflict(self):
        g = DataflowGraph("t")
        g.vector("a")
        with pytest.raises(CompileError):
            g.matrix("a")

    def test_undeclared_tensor_rejected(self):
        from repro.dataflow.graph import OpNode, TensorKind, TensorNode

        g = DataflowGraph("t")
        ghost = TensorNode("ghost", TensorKind.VECTOR)
        with pytest.raises(CompileError):
            g.add_op(OpNode("op", OpKind.NOOP, (ghost,), ghost))

    def test_duplicate_op_name_rejected(self):
        g = pagerank_graph()
        with pytest.raises(CompileError):
            g.ewise("damp", "times", [g.tensors["scaled"]], g.vector("zz"))

    def test_topo_order_detects_cycle(self):
        g = DataflowGraph("t")
        a, b = g.vector("a"), g.vector("b")
        op1 = g.ewise("f", "plus", [a, b], a)
        op2 = g.ewise("h", "plus", [a], b)
        with pytest.raises(CompileError):
            g.topo_order([op1, op2])

    def test_producer_and_consumers(self):
        g = pagerank_graph()
        assert g.producer_of("pr_nextnext").name == "spmv"
        assert [op.name for op in g.consumers_of("pr_nextnext")] == ["damp"]


class TestClassification:
    def test_ewise_is_elementwise(self):
        g = pagerank_graph()
        assert classify_op(g.ops[1]) is DependencyClass.ELEMENTWISE

    def test_vxm_is_contraction(self):
        g = pagerank_graph()
        assert classify_op(g.ops[0]) is DependencyClass.CONTRACTION

    def test_dot_is_reduction(self):
        g = cg_like_graph()
        dot = next(op for op in g.ops if op.kind is OpKind.DOT)
        assert classify_op(dot) is DependencyClass.REDUCTION
        assert not is_subtensor(dot)


class TestFusion:
    def test_pagerank_single_group(self):
        groups = fuse_ewise(pagerank_graph())
        assert len(groups) == 1
        assert groups[0].n_ops == 2
        # 'scaled' never leaves the group; 'pr_new' is loop-carried out.
        assert groups[0].internal_tensors == ("scaled",)
        assert "pr_new" in groups[0].outputs

    def test_disconnected_groups_stay_separate(self):
        g = DataflowGraph("t")
        a, b, c, d = (g.vector(x) for x in "abcd")
        g.ewise("f1", "abs", [a], b)
        g.ewise("f2", "abs", [c], d)
        assert len(fuse_ewise(g)) == 2

    def test_no_ewise(self):
        assert fuse_ewise(knn_graph()) == []


class TestOEIDetection:
    def test_pagerank_cross_iteration(self):
        path = find_oei_path(pagerank_graph())
        assert path is not None
        assert path.iteration_distance == 1
        assert [op.name for op in path.ewise_ops] == ["damp", "tele"]

    def test_knn_within_iteration(self):
        path = find_oei_path(knn_graph())
        assert path is not None
        assert path.iteration_distance == 0
        assert path.n_ewise_ops == 0

    def test_cg_has_no_path(self):
        assert find_oei_path(cg_like_graph()) is None

    def test_non_constant_matrix_blocks_reuse(self):
        g = DataflowGraph("t")
        m = g.matrix("M", constant=False)
        v1, v2 = g.vector("v1"), g.vector("v2")
        g.vxm("op", v1, m, v2, "mul_add")
        g.carry(v2, v1)
        assert find_oei_path(g) is None


class TestCompiler:
    def test_pagerank_program(self):
        prog = compile_program(pagerank_graph())
        assert prog.has_oei
        assert prog.semiring_name == "mul_add"
        assert prog.n_path_ops == 2
        assert prog.result_reg == 1
        assert prog.scalar_names == ("teleport",)
        assert prog.aux_vectors == ()

    def test_knn_program_is_noop(self):
        prog = compile_program(knn_graph())
        assert prog.has_oei and prog.result_reg is None
        assert prog.n_path_ops == 0

    def test_cg_program_no_oei(self):
        prog = compile_program(cg_like_graph())
        assert not prog.has_oei
        assert prog.side_ewise_ops == 1

    def test_mixed_semirings_rejected(self):
        g = knn_graph()
        g2 = DataflowGraph("bad")
        m = g2.matrix("M")
        a, b, c = g2.vector("a"), g2.vector("b"), g2.vector("c")
        g2.vxm("one", a, m, b, "and_or")
        g2.vxm("two", b, m, c, "min_add")
        with pytest.raises(CompileError):
            compile_program(g2)

    def test_no_contraction_rejected(self):
        g = DataflowGraph("empty")
        a, b = g.vector("a"), g.vector("b")
        g.ewise("f", "abs", [a], b)
        with pytest.raises(CompileError):
            compile_program(g)

    def test_unknown_ewise_op_rejected(self):
        g = pagerank_graph()
        g.ewise("bogus", "no_such_op", [g.tensors["pr_new"]], g.vector("zz"))
        g.loop_carried.clear()
        g.carry(g.tensors["zz"], g.tensors["pr_next"])
        with pytest.raises(CompileError):
            compile_program(g)

    def test_run_elementwise_aux_and_scalar(self):
        g = DataflowGraph("sssp_like")
        m = g.matrix("A")
        dist, y, new = g.vector("dist"), g.vector("y"), g.vector("new_dist")
        g.vxm("relax", dist, m, y, "min_add")
        g.ewise("take_min", "min", [y, dist], new)
        g.carry(new, dist)
        prog = compile_program(g)
        assert prog.aux_vectors == ("dist",)
        out = prog.run_elementwise(
            np.array([5.0, 1.0]),
            np.array([0, 1]),
            {"dist": np.array([3.0, 4.0])},
            {},
        )
        assert np.array_equal(out, [3.0, 1.0])

    def test_missing_aux_raises(self):
        g = DataflowGraph("t")
        m = g.matrix("A")
        d, y, nd = g.vector("d"), g.vector("y"), g.vector("nd")
        g.vxm("op", d, m, y, "min_add")
        g.ewise("mn", "min", [y, d], nd)
        g.carry(nd, d)
        prog = compile_program(g)
        with pytest.raises(CompileError):
            prog.run_elementwise(np.zeros(2), np.arange(2), {}, {})


class TestAnalysis:
    def test_analysis_summary(self):
        a = analyze(pagerank_graph())
        assert a.has_oei
        assert a.n_fused_groups == 1
        assert a.total_ewise_ops == 2
        assert a.semiring_name == "mul_add"
