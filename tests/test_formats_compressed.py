"""Unit tests for CSR/CSC and their conversions."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import FormatError
from repro.formats.compressed import INDEX_BYTES, VALUE_BYTES
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from tests.strategies import dims, seeds


class TestCSR:
    def test_round_trip_dense(self, small_dense):
        assert np.array_equal(CSRMatrix.from_dense(small_dense).to_dense(), small_dense)

    def test_row_access(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        cols, vals = csr.row(3)
        expected_cols = np.nonzero(small_dense[3])[0]
        assert np.array_equal(cols, expected_cols)
        assert np.array_equal(vals, small_dense[3, expected_cols])

    def test_empty_row(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        cols, vals = csr.row(7)
        assert cols.size == 0 and vals.size == 0

    def test_row_nnz(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        assert np.array_equal(csr.row_nnz(), (small_dense != 0).sum(axis=1))

    def test_matvec_matches_numpy(self, small_dense, rng):
        csr = CSRMatrix.from_dense(small_dense)
        x = rng.random(30)
        assert np.allclose(csr.matvec(x), small_dense @ x)

    def test_matvec_rejects_bad_length(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        with pytest.raises(ValueError):
            csr.matvec(np.zeros(29))

    def test_transpose(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        assert np.array_equal(csr.transpose().to_dense(), small_dense.T)

    def test_indices_sorted_within_rows(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        for i in range(csr.nrows):
            cols, _ = csr.row(i)
            assert np.all(np.diff(cols) > 0)

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0, 1]), np.ones(2))

    def test_validation_rejects_wrong_indptr_end(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 1, 3]), np.array([0, 1]), np.ones(2))

    def test_validation_rejects_out_of_range_index(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 1, 2]), np.array([0, 2]), np.ones(2))

    def test_slice_bytes(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        per_entry = INDEX_BYTES + VALUE_BYTES
        assert np.array_equal(csr.slice_bytes(), csr.row_nnz() * per_entry)

    def test_storage_bytes_accounts_all_arrays(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        expected = (
            (csr.nrows + 1) * INDEX_BYTES
            + csr.nnz * INDEX_BYTES
            + csr.nnz * VALUE_BYTES
        )
        assert csr.storage_bytes() == expected


class TestCSC:
    def test_round_trip_dense(self, small_dense):
        assert np.array_equal(CSCMatrix.from_dense(small_dense).to_dense(), small_dense)

    def test_col_access(self, small_dense):
        csc = CSCMatrix.from_dense(small_dense)
        rows, vals = csc.col(5)
        expected_rows = np.nonzero(small_dense[:, 5])[0]
        assert np.array_equal(rows, expected_rows)
        assert np.array_equal(vals, small_dense[expected_rows, 5])

    def test_empty_col(self, small_dense):
        csc = CSCMatrix.from_dense(small_dense)
        rows, vals = csc.col(13)
        assert rows.size == 0

    def test_vecmat_matches_numpy(self, small_dense, rng):
        csc = CSCMatrix.from_dense(small_dense)
        x = rng.random(30)
        assert np.allclose(csc.vecmat(x), x @ small_dense)

    def test_vecmat_rejects_bad_length(self, small_dense):
        with pytest.raises(ValueError):
            CSCMatrix.from_dense(small_dense).vecmat(np.zeros(31))


class TestConversions:
    def test_csr_to_csc_preserves_matrix(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        assert np.array_equal(csr.to_csc().to_dense(), small_dense)

    def test_csc_to_csr_preserves_matrix(self, small_dense):
        csc = CSCMatrix.from_dense(small_dense)
        assert np.array_equal(csc.to_csr().to_dense(), small_dense)

    def test_coo_duplicates_summed(self):
        coo = COOMatrix(
            (2, 2), np.array([0, 0]), np.array([1, 1]), np.array([1.0, 2.5])
        )
        assert CSRMatrix.from_coo(coo).to_dense()[0, 1] == 3.5

    def test_rectangular(self, rng):
        dense = (rng.random((5, 9)) < 0.3) * rng.random((5, 9))
        csr = CSRMatrix.from_dense(dense)
        assert csr.to_csc().to_csr() == csr


@settings(max_examples=40, deadline=None)
@given(dims(1, 15), dims(1, 15), seeds)
def test_property_csr_csc_round_trip(nr, nc, seed):
    gen = np.random.default_rng(seed)
    dense = (gen.random((nr, nc)) < 0.3) * gen.uniform(-1, 1, (nr, nc))
    csr = CSRMatrix.from_dense(dense)
    assert csr.to_csc().to_csr() == csr


@settings(max_examples=40, deadline=None)
@given(dims(1, 12), seeds)
def test_property_matvec_vecmat_transpose_duality(n, seed):
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < 0.35) * gen.uniform(-1, 1, (n, n))
    x = gen.uniform(-1, 1, n)
    csr = CSRMatrix.from_dense(dense)
    csc = CSCMatrix.from_dense(dense)
    # x^T A == (A^T x)^T
    assert np.allclose(csc.vecmat(x), csr.transpose().matvec(x))
