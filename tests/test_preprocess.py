"""Tests for reordering algorithms and the preprocessing pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.matrices import banded_mesh, power_law, road_network
from repro.oei import reuse_footprint
from repro.preprocess import (
    bandwidth,
    graph_order,
    preprocess,
    vanilla_reorder,
)
from tests.conftest import random_coo


def _is_permutation(perm: np.ndarray, n: int) -> bool:
    return perm.size == n and np.array_equal(np.sort(perm), np.arange(n))


class TestVanillaReorder:
    def test_returns_permutation(self):
        coo = random_coo(3, n=50)
        assert _is_permutation(vanilla_reorder(coo), 50)

    def test_reduces_bandwidth_on_shuffled_band(self):
        coo = banded_mesh(300, 5, 2000, seed=1)
        shuffle = np.random.default_rng(0).permutation(300)
        scrambled = coo.permute(shuffle, shuffle)
        perm = vanilla_reorder(scrambled)
        restored = scrambled.permute(perm, perm)
        assert bandwidth(restored) < bandwidth(scrambled) / 3

    def test_preserves_matrix_up_to_relabeling(self):
        coo = random_coo(4, n=40)
        perm = vanilla_reorder(coo)
        permuted = coo.permute(perm, perm)
        assert permuted.nnz == coo.deduplicate().nnz
        assert np.isclose(permuted.vals.sum(), coo.deduplicate().vals.sum())

    def test_rejects_rectangular(self):
        from repro.formats.coo import COOMatrix

        with pytest.raises(ValueError):
            vanilla_reorder(COOMatrix.empty((3, 4)))

    def test_handles_disconnected_components(self):
        from repro.formats.coo import COOMatrix

        # Two disjoint edges plus isolated vertices.
        coo = COOMatrix(
            (6, 6), np.array([0, 4]), np.array([1, 5]), np.array([1.0, 1.0])
        )
        assert _is_permutation(vanilla_reorder(coo), 6)


class TestGraphOrder:
    def test_returns_permutation(self):
        coo = random_coo(5, n=60)
        assert _is_permutation(graph_order(coo), 60)

    def test_empty_matrix(self):
        from repro.formats.coo import COOMatrix

        assert graph_order(COOMatrix.empty((0, 0))).size == 0

    def test_improves_locality_of_scattered_band(self):
        coo = banded_mesh(200, 4, 1200, seed=2)
        shuffle = np.random.default_rng(1).permutation(200)
        scrambled = coo.permute(shuffle, shuffle)
        perm = graph_order(scrambled, window=5)
        restored = scrambled.permute(perm, perm)
        before = reuse_footprint(scrambled).avg_pct
        after = reuse_footprint(restored).avg_pct
        assert after < before

    def test_window_must_cover_neighbors(self):
        coo = random_coo(6, n=30)
        # Any window width still yields a valid permutation.
        assert _is_permutation(graph_order(coo, window=1), 30)
        assert _is_permutation(graph_order(coo, window=10), 30)


class TestPipeline:
    def test_preprocess_none(self):
        coo = random_coo(7, n=40)
        result = preprocess(coo, reorder=None, block_size=None)
        assert result.permutation is None
        assert result.blocked is None
        assert result.reorder_name == "none"
        assert result.dual_bytes > 0

    def test_preprocess_with_blocking(self):
        coo = random_coo(8, n=40)
        result = preprocess(coo, reorder="vanilla", block_size=16)
        assert result.blocked is not None
        assert 0 < result.storage_ratio < 1.2
        assert result.blocked_bytes == result.blocked.storage_bytes()

    def test_preprocess_preserves_nnz(self):
        coo = random_coo(9, n=40)
        result = preprocess(coo, reorder="graphorder", block_size=32)
        assert result.matrix.nnz == coo.deduplicate().nnz

    def test_unknown_reorder(self):
        with pytest.raises(ConfigError):
            preprocess(random_coo(1), reorder="bogus")

    def test_blocked_reduces_storage_on_local_matrix(self):
        coo = road_network(2000, 5000, seed=3)
        result = preprocess(coo, reorder="vanilla", block_size=256)
        assert result.storage_ratio < 0.7


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_reorders_are_permutations(seed):
    coo = random_coo(seed % 1000, n=35, density=0.15)
    for perm in (vanilla_reorder(coo), graph_order(coo)):
        assert _is_permutation(perm, 35)
