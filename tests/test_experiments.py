"""Tests for the experiment drivers on a reduced (workload x matrix)
subset — fast enough for the unit suite, exercising every figure's
logic end to end."""

import pytest

from repro.errors import ConfigError
from repro.experiments import ExperimentContext
from repro.experiments import (
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
    fig22,
    fig23,
    table1,
)
from repro.experiments.report import format_bar_series, format_table


@pytest.fixture(scope="module")
def small_context() -> ExperimentContext:
    return ExperimentContext(
        workloads=("pr", "sssp", "cg"),
        matrices=("gy", "ro"),
    )


class TestRunner:
    def test_results_are_cached(self, small_context):
        a = small_context.simulate("sparsepipe", "pr", "gy")
        b = small_context.simulate("sparsepipe", "pr", "gy")
        assert a is b

    def test_equal_valued_configs_share_one_cache_entry(self, small_context):
        # Regression: keying on id(config) made every equal-valued
        # config instance a fresh cache entry (and, worse, let a
        # recycled id() serve a stale result).
        from repro.arch import SparsepipeConfig

        a = small_context.simulate(
            "ideal", "pr", "gy", config=SparsepipeConfig(subtensor_cols=128)
        )
        b = small_context.simulate(
            "ideal", "pr", "gy", config=SparsepipeConfig(subtensor_cols=128)
        )
        assert a is b

    def test_distinct_configs_get_distinct_entries(self, small_context):
        from repro.arch import SparsepipeConfig

        a = small_context.simulate(
            "sparsepipe", "pr", "gy", config=SparsepipeConfig(subtensor_cols=128)
        )
        b = small_context.simulate(
            "sparsepipe", "pr", "gy", config=SparsepipeConfig(subtensor_cols=64)
        )
        assert a is not b
        assert a.cycles != b.cycles

    def test_unknown_architecture(self, small_context):
        with pytest.raises(ConfigError):
            small_context.simulate("tpu", "pr", "gy")

    def test_speedup_positive(self, small_context):
        assert small_context.speedup("pr", "gy", over="ideal") > 0

    def test_subset_respected(self, small_context):
        assert small_context.all_workloads() == ("pr", "sssp", "cg")
        assert small_context.all_matrices() == ("gy", "ro")

    def test_prepared_variants_distinct(self, small_context):
        a = small_context.prepared("gy", reorder=None, block_size=None)
        b = small_context.prepared("gy", reorder="vanilla", block_size=256)
        assert a is not b
        assert a.blocked is None and b.blocked is not None


class TestDrivers:
    def test_table1_rows(self):
        rows = table1.run()
        assert len(rows) == 9
        assert all(0 <= r.max_pct <= 100 for r in rows)

    def test_fig14(self, small_context):
        rows = fig14.run(small_context)
        assert {r.workload for r in rows} == {"pr", "sssp", "cg"}
        for r in rows:
            assert set(r.speedups) == {"gy", "ro"}
            assert r.geomean > 0.5

    def test_fig15_uses_full_pairs(self):
        # Fig 15's pairs are fixed by the paper regardless of subset.
        ctx = ExperimentContext(matrices=("gy",))
        series = fig15.run(ctx)
        assert [(s.workload, s.matrix) for s in series] == [
            ("sssp", "bu"), ("knn", "eu"), ("kcore", "eu"), ("sssp", "wi"),
        ]

    def test_fig16(self, small_context):
        rows = fig16.run(small_context)
        for r in rows:
            assert r.iso_gpu_geomean > r.iso_cpu_geomean  # bandwidth gap

    def test_fig17_restricted_to_gpu_workloads(self, small_context):
        rows = fig17.run(small_context)
        assert {r.workload for r in rows} == {"bfs", "kcore", "pr", "sssp"}

    def test_fig18_upper_bound(self, small_context):
        rows = fig18.run(small_context)
        for r in rows:
            for v in r.fraction_of_oracle.values():
                assert v <= 1.001

    def test_fig19_variants(self, small_context):
        rows = fig19.run(small_context)
        assert [r.variant for r in rows] == ["none", "blocked", "reorder", "both"]

    def test_fig20_storage(self, small_context):
        rows = fig20.run_storage(small_context)
        assert all(0 < r.ratio_reordered < 1 for r in rows)

    def test_fig21_utilization_bounds(self, small_context):
        rows = fig21.run(small_context)
        for r in rows:
            for v in r.utilization.values():
                assert 0 < v <= 1.0

    def test_fig22_systems(self, small_context):
        rows = fig22.run(small_context)
        assert [r.system for r in rows] == ["cpu", "gpu", "sparsepipe"]

    def test_fig23_relative_energy(self, small_context):
        rows = fig23.run(small_context)
        for r in rows:
            assert r.relative_total > 0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 3.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a"], [(1, 2)])

    def test_format_bar_series(self):
        text = format_bar_series(["x", "yy"], [1.0, 2.0])
        assert "#" in text
        assert "yy" in text

    def test_format_bar_series_rejects_mismatch(self):
        with pytest.raises(ValueError):
            format_bar_series(["x"], [1.0, 2.0])

    def test_format_bar_series_zero_peak(self):
        text = format_bar_series(["x"], [0.0])
        assert "0.000" in text


class TestExport:
    def test_export_writes_complete_document(self, small_context, tmp_path):
        import json

        from repro.experiments.export import export_all

        path = export_all(tmp_path / "results.json", small_context)
        doc = json.loads(path.read_text())
        expected_sections = {
            "table1", "fig14", "fig15", "fig16", "fig17", "fig18",
            "fig19", "fig20a", "fig20b", "fig21", "fig22", "fig23",
            "summary", "metrics", "manifests",
        }
        assert set(doc) == expected_sections
        assert len(doc["table1"]) == 9
        assert all("claim" in c for c in doc["summary"])
        # Observability sections: the one-schema registry and one
        # provenance manifest per simulated point.
        assert doc["metrics"]["sim.runs"]["value"] >= 1
        assert doc["manifests"]
        assert all("digest" in m for m in doc["manifests"])

    def test_export_round_trips_numeric_types(self, small_context, tmp_path):
        import json

        from repro.experiments.export import export_all

        path = export_all(tmp_path / "r.json", small_context)
        doc = json.loads(path.read_text())
        for row in doc["fig14"]:
            assert isinstance(row["geomean"], float)


class TestSummary:
    def test_summary_claims_structure(self, small_context):
        from repro.experiments import summary

        claims = summary.run(small_context)
        assert len(claims) >= 10
        for c in claims:
            assert c.claim and c.paper and c.measured
            assert isinstance(c.holds, bool)

    def test_summary_main_prints_verdicts(self, small_context, capsys):
        from repro.experiments import summary

        summary.main(small_context)
        out = capsys.readouterr().out
        assert "paper" in out and "measured" in out
        assert "claims hold" in out
