"""Shared fixtures: small deterministic matrices and hypothesis strategies.

The reusable helpers live in :mod:`repro.testing` (shared with
``benchmarks/conftest.py``); this file binds them as fixtures and adds
the ``--update-goldens`` flag for ``tests/test_goldens.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.testing import random_coo  # noqa: F401  (re-export for tests)


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate tests/goldens/*.json from the current code "
        "instead of asserting against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense(rng) -> np.ndarray:
    """A 30x30 ~10%-dense matrix with a guaranteed empty row and column."""
    dense = (rng.random((30, 30)) < 0.1) * rng.uniform(0.5, 1.5, (30, 30))
    dense[7, :] = 0.0
    dense[:, 13] = 0.0
    return dense


@pytest.fixture
def small_coo(small_dense) -> COOMatrix:
    return COOMatrix.from_dense(small_dense)
