"""Shared fixtures: small deterministic matrices and hypothesis strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.coo import COOMatrix


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense(rng) -> np.ndarray:
    """A 30x30 ~10%-dense matrix with a guaranteed empty row and column."""
    dense = (rng.random((30, 30)) < 0.1) * rng.uniform(0.5, 1.5, (30, 30))
    dense[7, :] = 0.0
    dense[:, 13] = 0.0
    return dense


@pytest.fixture
def small_coo(small_dense) -> COOMatrix:
    return COOMatrix.from_dense(small_dense)


def random_coo(seed: int, n: int = 25, density: float = 0.12) -> COOMatrix:
    """Deterministic random square COO used by parametrized tests."""
    gen = np.random.default_rng(seed)
    dense = (gen.random((n, n)) < density) * gen.uniform(-2.0, 2.0, (n, n))
    return COOMatrix.from_dense(dense)
