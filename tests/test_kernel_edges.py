"""Edge-case tests for the vectorized kernels and backend.

The shapes where vectorized indptr arithmetic classically goes wrong:
empty matrices, all-empty columns/rows, single-nonzero inputs, nnz
landing exactly on a sub-tensor block boundary, and zero-iteration
workloads. Every case is run differentially (batched vs reference,
vectorized vs reference) with exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import SparsepipeConfig
from repro.arch.profile import WorkloadProfile
from repro.arch.simulator import SparsepipeSimulator
from repro.errors import ConfigError
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.oei import run_oei_pairs
from repro.preprocess.pipeline import preprocess
from repro.semiring import (
    LAND_MONOID,
    LOR_MONOID,
    MAX_MONOID,
    MIN_MONOID,
    MONOIDS,
    PLUS_MONOID,
    kernels,
)
from tests.test_oei_executor import pagerank_program, sssp_program

ALL_MONOIDS = sorted(MONOIDS)


def _same(a: np.ndarray, b: np.ndarray) -> bool:
    return a.shape == b.shape and bool(
        np.all((a == b) | (np.isnan(a) & np.isnan(b)))
    )


class TestSegmentReduceEdges:
    @pytest.mark.parametrize("name", ALL_MONOIDS)
    def test_empty_values(self, name):
        m = MONOIDS[name]
        out = kernels.segment_reduce(m, np.array([]), np.array([], dtype=np.int64), 5)
        assert _same(out, np.full(5, m.identity))

    @pytest.mark.parametrize("name", ALL_MONOIDS)
    def test_zero_segments(self, name):
        m = MONOIDS[name]
        out = kernels.segment_reduce(m, np.array([]), np.array([], dtype=np.int64), 0)
        assert out.shape == (0,)

    @pytest.mark.parametrize("name", ALL_MONOIDS)
    def test_single_value(self, name):
        m = MONOIDS[name]
        ref = m.segment_reduce(np.array([2.5]), np.array([3]), 7)
        bat = kernels.segment_reduce(m, np.array([2.5]), np.array([3]), 7)
        assert _same(ref, bat)

    @pytest.mark.parametrize("name", ALL_MONOIDS)
    def test_all_values_in_last_segment(self, name):
        """Trailing empty segments + a populated final one — the classic
        reduceat off-by-one (an empty slice at index i returns
        ``a[indices[i]]``, not the identity)."""
        m = MONOIDS[name]
        vals = np.array([1.0, 0.0, 2.0])
        ids = np.array([9, 9, 9])
        assert _same(
            m.segment_reduce(vals, ids, 10),
            kernels.segment_reduce(m, vals, ids, 10),
        )

    @pytest.mark.parametrize("name", ALL_MONOIDS)
    def test_alternating_empty_segments(self, name):
        m = MONOIDS[name]
        vals = np.array([3.0, -1.0, 0.0, 4.0, 4.0])
        ids = np.array([0, 0, 2, 2, 4])
        assert _same(
            m.segment_reduce(vals, ids, 6),
            kernels.segment_reduce(m, vals, ids, 6),
        )

    def test_min_with_inf_identity_segments(self):
        """min-add's empty columns must stay +inf, not inherit a
        neighbouring segment's minimum."""
        vals = np.array([5.0, 2.0])
        ids = np.array([1, 1])
        out = kernels.segment_reduce(MIN_MONOID, vals, ids, 4)
        assert out[0] == np.inf and out[2] == np.inf and out[3] == np.inf
        assert out[1] == 2.0

    def test_lor_single_element_normalizes(self):
        """The batched LOR path normalizes to {0, 1} exactly like the
        reference ufunc.at path — even for one-element segments."""
        vals = np.array([7.0])
        ids = np.array([2])
        ref = LOR_MONOID.segment_reduce(vals, ids, 4)
        bat = kernels.segment_reduce(LOR_MONOID, vals, ids, 4)
        assert _same(ref, bat)

    def test_land_falls_back_to_reference(self):
        """LAND has no grouping-safe batched path; the kernel must
        delegate, preserving the reference's exact behaviour."""
        vals = np.array([1.0, 0.0, 3.0])
        ids = np.array([0, 0, 2])
        assert _same(
            LAND_MONOID.segment_reduce(vals, ids, 3),
            kernels.segment_reduce(LAND_MONOID, vals, ids, 3),
        )


class TestScatterEdges:
    @pytest.mark.parametrize("name", ALL_MONOIDS)
    def test_empty_scatter_is_noop(self, name):
        m = MONOIDS[name]
        out = np.array([1.0, 2.0])
        kernels.scatter(m, out, np.array([], dtype=np.int64), np.array([]))
        assert _same(out, np.array([1.0, 2.0]))

    @pytest.mark.parametrize("name", ALL_MONOIDS)
    def test_duplicate_indices(self, name):
        m = MONOIDS[name]
        gen = np.random.default_rng(5)
        vals = gen.uniform(-2.0, 2.0, 40)
        idx = gen.integers(0, 6, 40)
        ref = np.full(6, m.identity)
        bat = ref.copy()
        m.scatter(ref, idx, vals)
        kernels.scatter(m, bat, idx, vals)
        assert _same(ref, bat)

    def test_min_scatter_into_populated_output(self):
        out_ref = np.array([5.0, np.inf, 1.0])
        out_bat = out_ref.copy()
        idx = np.array([0, 0, 2, 1])
        vals = np.array([7.0, 3.0, 4.0, 2.0])
        MIN_MONOID.scatter(out_ref, idx, vals)
        kernels.scatter(MIN_MONOID, out_bat, idx, vals)
        assert _same(out_ref, out_bat)

    def test_plus_scatter_keeps_fold_order(self):
        """PLUS must delegate to add.at: batching would re-associate
        ((out + a) + b) into (out + (a + b))."""
        gen = np.random.default_rng(9)
        vals = gen.uniform(0.0, 1.0, 100) * 10.0 ** gen.integers(-8, 8, 100)
        idx = np.zeros(100, dtype=np.int64)
        ref = np.array([1e-3])
        bat = ref.copy()
        PLUS_MONOID.scatter(ref, idx, vals)
        kernels.scatter(PLUS_MONOID, bat, idx, vals)
        assert _same(ref, bat)

    def test_max_scatter_all_one_target(self):
        out_ref = np.array([-np.inf, 0.5])
        out_bat = out_ref.copy()
        idx = np.array([0, 0, 0])
        vals = np.array([1.0, 9.0, 4.0])
        MAX_MONOID.scatter(out_ref, idx, vals)
        kernels.scatter(MAX_MONOID, out_bat, idx, vals)
        assert _same(out_ref, out_bat)


class TestKernelValidation:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError):
            kernels.check_kernel("turbo")

    def test_executor_rejects_unknown_kernel(self):
        coo = COOMatrix.from_dense(np.eye(8))
        csc, csr = CSCMatrix.from_coo(coo), CSRMatrix.from_coo(coo)
        with pytest.raises(ConfigError):
            run_oei_pairs(csc, csr, pagerank_program(), np.ones(8), 2,
                          kernel="turbo")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            SparsepipeConfig(backend="turbo")


def _profile(n_iterations=4, **kw):
    return WorkloadProfile(
        name="edge", semiring_name="mul_add", has_oei=True,
        n_iterations=n_iterations, path_ewise_ops=1, **kw
    )


def _both_backends(coo, profile, **knobs):
    prep = preprocess(coo)
    return [
        SparsepipeSimulator(
            SparsepipeConfig(backend=backend, **knobs)
        ).run(profile, prep, observers=())
        for backend in ("reference", "vectorized")
    ]


class TestBackendEdges:
    def test_empty_matrix(self):
        """A matrix with zero stored entries still streams its (empty)
        sub-tensors; both backends must agree exactly."""
        coo = COOMatrix.from_dense(np.zeros((12, 12)))
        ref, vec = _both_backends(coo, _profile(), subtensor_cols=4)
        assert ref == vec
        assert ref.traffic.total_bytes == vec.traffic.total_bytes

    def test_all_empty_rows_and_columns_block(self):
        """Non-zeros confined to one corner: most columns/rows empty."""
        dense = np.zeros((20, 20))
        dense[:3, :3] = 1.5
        ref, vec = _both_backends(
            COOMatrix.from_dense(dense), _profile(), subtensor_cols=6
        )
        assert ref == vec

    def test_single_nonzero(self):
        dense = np.zeros((16, 16))
        dense[11, 5] = 2.0
        ref, vec = _both_backends(
            COOMatrix.from_dense(dense), _profile(), subtensor_cols=5
        )
        assert ref == vec

    @pytest.mark.parametrize("n,width", [(16, 16), (32, 16), (48, 16)])
    def test_nnz_at_block_boundary(self, n, width):
        """n an exact multiple of the sub-tensor width — the final
        sub-tensor is exactly full, never padded."""
        gen = np.random.default_rng(n)
        dense = (gen.random((n, n)) < 0.2) * gen.uniform(0.5, 1.5, (n, n))
        dense[:, width - 1] = 1.0   # nnz ends exactly at the boundary
        ref, vec = _both_backends(
            COOMatrix.from_dense(dense), _profile(), subtensor_cols=width
        )
        assert ref == vec

    def test_single_iteration_stream_only(self):
        coo = COOMatrix.from_dense(np.triu(np.ones((10, 10))))
        ref, vec = _both_backends(coo, _profile(n_iterations=1), subtensor_cols=4)
        assert ref == vec
        assert ref.n_iterations == 1

    def test_zero_iteration_workload_rejected(self):
        """Zero-trip loops are a profile validation error — neither
        backend is ever asked to simulate them."""
        with pytest.raises(ConfigError):
            _profile(n_iterations=0)

    def test_zero_iteration_executor_returns_initial_state(self):
        """The functional executor's n=0 edge: no iterations, history
        holds just the initial vector."""
        coo = COOMatrix.from_dense(np.eye(6))
        csc, csr = CSCMatrix.from_coo(coo), CSRMatrix.from_coo(coo)
        x0 = np.full(6, np.inf)
        trace = run_oei_pairs(csc, csr, sssp_program(), x0, 0,
                              aux_provider=lambda k, x: {"dist": x})
        assert trace.n_iterations == 0
        assert len(trace.x_history) == 1
        assert _same(trace.x_history[0], x0)
