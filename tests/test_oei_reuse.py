"""Tests for the cross-iteration reuse footprint analysis (Table I)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.formats.coo import COOMatrix
from repro.oei import reuse_footprint
from repro.oei.schedule import IS_LAG
from tests.strategies import dims, seeds


def _coo(n, rows, cols):
    rows = np.asarray(rows)
    return COOMatrix((n, n), rows, np.asarray(cols), np.ones(rows.size))


class TestFootprint:
    def test_empty_matrix(self):
        stats = reuse_footprint(COOMatrix.empty((5, 5)))
        assert stats.max_live == 0 and stats.avg_pct == 0.0

    def test_single_diagonal_element(self):
        # (2, 2): loaded at step 2, reused at step 4 -> live 2 steps.
        stats = reuse_footprint(_coo(5, [2], [2]))
        assert stats.max_live == 1
        assert stats.series[2] == 1 and stats.series[3] == 1
        assert stats.series[4] == 0

    def test_upper_triangular_element_immediate_reuse(self):
        # (0, 4): reuse step 2 < load step 4 -> lives exactly 1 step.
        stats = reuse_footprint(_coo(6, [0], [4]))
        assert stats.series[4] == 1
        assert stats.series.sum() == 1

    def test_lower_left_corner_long_residency(self):
        # (9, 0) in a 10x10: loaded at 0, reused at 11 -> 11 steps live.
        stats = reuse_footprint(_coo(10, [9], [0]))
        assert stats.series[:11].sum() == 11

    def test_dense_lower_triangle_peaks_midway(self):
        n = 40
        rows, cols = np.tril_indices(n, k=-1)
        stats = reuse_footprint(_coo(n, rows, cols))
        peak_step = int(np.argmax(stats.series))
        assert n // 4 < peak_step < 3 * n // 4
        # Uniform lower triangle: avg occupancy ~ nnz/3.
        assert 25.0 < stats.avg_pct < 45.0

    def test_identity_band_is_tiny(self):
        n = 100
        idx = np.arange(n)
        stats = reuse_footprint(_coo(n, idx, idx))
        assert stats.max_pct <= 100.0 * IS_LAG / n + 1.0

    def test_subtensor_granularity_coarsens(self):
        n = 64
        rows, cols = np.tril_indices(n, k=-1)
        fine = reuse_footprint(_coo(n, rows, cols), subtensor_cols=1)
        coarse = reuse_footprint(_coo(n, rows, cols), subtensor_cols=16)
        assert coarse.n_steps < fine.n_steps
        # Coarser steps can only increase the peak fraction.
        assert coarse.max_live >= fine.max_live

    def test_invalid_subtensor_size(self):
        with pytest.raises(ValueError):
            reuse_footprint(_coo(4, [0], [0]), subtensor_cols=0)

    def test_bytes_accounting(self):
        stats = reuse_footprint(_coo(10, [9], [0]))
        assert stats.max_bytes() == stats.max_live * 12
        assert stats.avg_bytes(bytes_per_element=10) == stats.avg_live * 10

    def test_accepts_csc_input(self):
        from repro.formats.csc import CSCMatrix

        coo = _coo(8, [1, 7], [5, 0])
        a = reuse_footprint(coo)
        b = reuse_footprint(CSCMatrix.from_coo(coo))
        assert a.max_live == b.max_live
        assert np.array_equal(a.series, b.series)


@settings(max_examples=30, deadline=None)
@given(dims(2, 40), seeds)
def test_property_occupancy_bounds(n, seed):
    gen = np.random.default_rng(seed)
    dense = gen.random((n, n)) < 0.3
    coo = COOMatrix.from_dense(dense.astype(float))
    stats = reuse_footprint(coo)
    assert 0 <= stats.max_live <= stats.nnz
    assert 0.0 <= stats.avg_live <= stats.max_live
    assert stats.series.min() >= 0
    # Conservation: total residency equals the sum of interval lengths.
    if coo.nnz:
        dur = np.maximum(coo.cols + 1, coo.rows + IS_LAG) - coo.cols
        assert stats.series.sum() == dur.sum()


class TestFusionDepth:
    def test_depth_two_is_default(self):
        coo = _coo(10, [9], [0])
        assert reuse_footprint(coo).max_live == reuse_footprint(
            coo, fusion_depth=2
        ).max_live

    def test_deeper_fusion_extends_residency(self):
        coo = _coo(10, [2], [2])
        d2 = reuse_footprint(coo, fusion_depth=2)
        d4 = reuse_footprint(coo, fusion_depth=4)
        assert d4.series.sum() == d2.series.sum() + 2 * IS_LAG

    def test_depth_below_two_rejected(self):
        with pytest.raises(ValueError):
            reuse_footprint(_coo(4, [0], [0]), fusion_depth=1)

    def test_monotone_in_depth(self):
        n = 30
        rows, cols = np.tril_indices(n, k=-1)
        maxes = [
            reuse_footprint(_coo(n, rows, cols), fusion_depth=k).max_live
            for k in (2, 3, 5)
        ]
        assert maxes == sorted(maxes)
