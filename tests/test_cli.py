"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main
from repro.formats.matrix_market import write_matrix_market
from tests.conftest import random_coo


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(["simulate", "-w", "pr", "-m", "gy"])
        assert args.workload == "pr" and args.matrix == "gy"

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "table1", "fig14"])
        assert args.ids == ["table1", "fig14"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pr" in out and "sssp" in out
        assert "ca" in out and "eu" in out
        assert "sparsepipe" in out

    def test_footprint(self, capsys):
        assert main(["footprint"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "bu" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "-w", "sssp", "-m", "gy"]) == 0
        out = capsys.readouterr().out
        assert "sparsepipe" in out and "oracle" in out

    def test_simulate_single_arch(self, capsys):
        assert main(["simulate", "-w", "pr", "-m", "gy", "-a", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "ideal" in out and "oracle" not in out

    def test_list_includes_software_oei(self, capsys):
        assert main(["list"]) == 0
        assert "software_oei" in capsys.readouterr().out

    def test_simulate_software_oei(self, capsys):
        assert main(["simulate", "-w", "bfs", "-m", "gy",
                     "-a", "software_oei", "cpu"]) == 0
        out = capsys.readouterr().out
        assert "software_oei" in out and "cpu" in out

    def test_analyze(self, tmp_path, capsys):
        path = tmp_path / "m.mtx"
        write_matrix_market(random_coo(2, n=30), path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "OEI reuse window" in out

    def test_unknown_experiment_id(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out


class TestLintCommands:
    def test_lint_all_workloads(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "pr: ok" in out
        assert "0 error(s)" in out

    def test_lint_named_workload(self, capsys):
        assert main(["lint", "cg"]) == 0
        out = capsys.readouterr().out
        assert "SP203" in out  # cg's reduction-scalar warning surfaces

    def test_lint_unknown_workload(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["lint", "nope"])

    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        assert "ok" in capsys.readouterr().out


class TestExportCommand:
    def test_export_writes_json(self, tmp_path, monkeypatch, capsys):
        import repro.__main__ as cli
        from repro.experiments.runner import ExperimentContext

        # Shrink the sweep so the CLI test stays fast.
        monkeypatch.setattr(
            cli, "ExperimentContext",
            lambda **kw: ExperimentContext(
                workloads=("pr",), matrices=("gy",), **kw
            ),
        )
        out = tmp_path / "results.json"
        assert main(["export", str(out)]) == 0
        assert out.exists()
        import json

        doc = json.loads(out.read_text())
        assert "summary" in doc and "table1" in doc


class TestTraceCommand:
    def test_trace_args(self):
        args = build_parser().parse_args(["trace", "bfs", "-o", "t.json"])
        assert args.workload == "bfs" and args.out == "t.json"
        assert args.matrix == "gy" and args.arch == "sparsepipe"

    def test_trace_writes_valid_trace_and_manifest(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        assert main(["trace", "bfs", "-o", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "cycles" in stdout and "perfetto" in stdout
        doc = json.loads(out.read_text())
        validate_chrome_trace(doc)
        manifest = json.loads((tmp_path / "trace.manifest.json").read_text())
        assert manifest["workload"] == "bfs"
        assert manifest["digest"] == doc["metadata"]["manifestDigest"]

    def test_trace_rejects_non_observable_arch(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["trace", "bfs", "-a", "cpu"])
