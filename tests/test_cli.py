"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main
from repro.formats.matrix_market import write_matrix_market
from tests.conftest import random_coo


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(["simulate", "-w", "pr", "-m", "gy"])
        assert args.workload == "pr" and args.matrix == "gy"

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "table1", "fig14"])
        assert args.ids == ["table1", "fig14"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pr" in out and "sssp" in out
        assert "ca" in out and "eu" in out
        assert "sparsepipe" in out

    def test_footprint(self, capsys):
        assert main(["footprint"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "bu" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "-w", "sssp", "-m", "gy"]) == 0
        out = capsys.readouterr().out
        assert "sparsepipe" in out and "oracle" in out

    def test_simulate_single_arch(self, capsys):
        assert main(["simulate", "-w", "pr", "-m", "gy", "-a", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "ideal" in out and "oracle" not in out

    def test_list_includes_software_oei(self, capsys):
        assert main(["list"]) == 0
        assert "software_oei" in capsys.readouterr().out

    def test_simulate_software_oei(self, capsys):
        assert main(["simulate", "-w", "bfs", "-m", "gy",
                     "-a", "software_oei", "cpu"]) == 0
        out = capsys.readouterr().out
        assert "software_oei" in out and "cpu" in out

    def test_analyze(self, tmp_path, capsys):
        path = tmp_path / "m.mtx"
        write_matrix_market(random_coo(2, n=30), path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "OEI reuse window" in out

    def test_unknown_experiment_id(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out


class TestLintCommands:
    def test_lint_all_workloads(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "pr: ok" in out
        assert "0 error(s)" in out

    def test_lint_named_workload(self, capsys):
        assert main(["lint", "cg"]) == 0
        out = capsys.readouterr().out
        assert "SP203" in out  # cg's reduction-scalar warning surfaces

    def test_lint_unknown_workload(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["lint", "nope"])

    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        assert "ok" in capsys.readouterr().out


class TestExportCommand:
    def test_export_writes_json(self, tmp_path, monkeypatch, capsys):
        import repro.__main__ as cli
        from repro.experiments.runner import ExperimentContext

        # Shrink the sweep so the CLI test stays fast.
        monkeypatch.setattr(
            cli, "ExperimentContext",
            lambda **kw: ExperimentContext(
                workloads=("pr",), matrices=("gy",), **kw
            ),
        )
        out = tmp_path / "results.json"
        assert main(["export", str(out)]) == 0
        assert out.exists()
        import json

        doc = json.loads(out.read_text())
        assert "summary" in doc and "table1" in doc


class TestTraceCommand:
    def test_trace_args(self):
        args = build_parser().parse_args(["trace", "bfs", "-o", "t.json"])
        assert args.workload == "bfs" and args.out == "t.json"
        assert args.matrix == "gy" and args.arch == "sparsepipe"

    def test_trace_writes_valid_trace_and_manifest(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        assert main(["trace", "bfs", "-o", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "cycles" in stdout and "perfetto" in stdout
        doc = json.loads(out.read_text())
        validate_chrome_trace(doc)
        manifest = json.loads((tmp_path / "trace.manifest.json").read_text())
        assert manifest["workload"] == "bfs"
        assert manifest["digest"] == doc["metadata"]["manifestDigest"]

    def test_trace_rejects_non_observable_arch(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["trace", "bfs", "-a", "cpu"])


class TestDiagnosticFormats:
    """--format json round-trips; --baseline budgets fail warnings too."""

    def test_lint_json_round_trips(self, capsys):
        import json

        assert main(["lint", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_errors"] == 0
        assert doc["counts"].get("SP203", 0) > 0
        # Each finding is the Diagnostic.as_dict shape.
        cg = doc["workloads"]["cg"]
        assert all({"code", "severity", "message"} <= set(d) for d in cg)

    def test_selfcheck_json_round_trips(self, capsys):
        import json

        assert main(["selfcheck", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_errors"] == 0 and doc["diagnostics"] == []

    def test_warn_only_lint_exits_zero(self, capsys):
        # cg/bgs only carry SP203 warnings; warnings never fail lint.
        assert main(["lint", "cg", "bgs"]) == 0

    def test_baseline_within_budget_exits_zero(self, capsys):
        from pathlib import Path

        baseline = str(
            Path(__file__).parent.parent / "diagnostics_baseline.json"
        )
        assert main(["lint", "--baseline", baseline]) == 0
        assert main(["selfcheck", "--baseline", baseline]) == 0

    def test_baseline_over_budget_fails_even_for_warnings(
        self, tmp_path, capsys
    ):
        import json

        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({"lint": {"SP203": 0}}))
        assert main(["lint", "cg", "--baseline", str(baseline)]) == 1
        err = capsys.readouterr().err
        assert "baseline exceeded" in err and "SP203" in err

    def test_repo_baseline_matches_reality(self, capsys):
        """The committed baseline must equal today's counts exactly —
        stale budgets would let new findings hide under old ones."""
        import json
        from collections import Counter
        from pathlib import Path

        from repro.workloads.registry import lint_registry

        baseline = Path(__file__).parent.parent / "diagnostics_baseline.json"
        committed = json.loads(baseline.read_text(encoding="utf-8"))
        actual = Counter(
            c for r in lint_registry(None).values() for c in r.codes()
        )
        assert committed["lint"] == dict(actual)
        assert committed["selfcheck"] == {}


class TestCheckCommand:
    def test_check_args_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.workloads == [] and args.matrix == "gy"
        assert args.backend == "both" and args.format == "text"

    def test_check_single_point(self, capsys):
        assert main(["check", "pr", "--backend", "vectorized"]) == 0
        out = capsys.readouterr().out
        assert "pr" in out and "ok" in out
        assert "1 point(s) checked: 0 violation(s)" in out

    def test_check_json_round_trips(self, capsys):
        import json

        assert main(["check", "cg", "gcn", "--backend", "reference",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_errors"] == 0
        points = {p["workload"]: p for p in doc["points"]}
        assert points["cg"]["oei"]["fusible"] is False
        assert points["gcn"]["oei"]["fusible"] is True
        for p in doc["points"]:
            assert p["oracle_ok"] is True
            assert (p["simulated"]["total_bytes"]
                    <= p["bounds"]["total_bytes"] * (1 + 1e-9) + 1.0)

    def test_error_reports_exit_nonzero(self, monkeypatch, capsys):
        from repro.analysis.diagnostics import DiagnosticReport
        from repro.workloads import registry as wreg

        bad = DiagnosticReport(subject="graph fake")
        bad.add("SP202", "no contraction anywhere")
        monkeypatch.setattr(wreg, "lint_registry",
                            lambda names=None: {"fake": bad})
        assert main(["lint"]) == 1

        import importlib

        # The package re-exports the function under the module's own
        # name, so import the submodule explicitly before patching.
        sc = importlib.import_module("repro.analysis.selfcheck")
        broken = DiagnosticReport(subject="selfcheck fake")
        broken.add("SP911", "global mutated outside initializer")
        monkeypatch.setattr(sc, "selfcheck", lambda: broken)
        assert main(["selfcheck"]) == 1
