"""The simulation service: queue lifecycle, coalescing, daemon.

The headline acceptance test is :class:`TestCoalescing`: N identical
and M distinct concurrent submissions must run exactly ``M + 1``
simulations (counted through the engine's ``sim.runs`` metric — not
through service bookkeeping, which could lie), every waiter must
receive the bit-identical result, and the coalesced waiters' manifests
must say so (``coalesced=True``, ``coalesced_into`` naming the
primary).

The rest locks the queue's contract: priority order, cancellation
(including cancelling a primary out from under its waiters), the
cache-served fast path, failure surfacing, spool crash recovery, and
the TCP daemon/client end to end.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.experiments.runner import ExperimentContext
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    BackgroundDaemon,
    JobQueue,
    ServiceClient,
    Spool,
    jobs as jb,
)
from repro.service.client import endpoint_from_file

POINT = ("sparsepipe", "pr", "gy")
OTHER = ("ideal", "pr", "gy")
THIRD = ("cpu", "kcore", "gy")


def run(coro):
    return asyncio.run(coro)


async def _started_queue(**kwargs) -> JobQueue:
    queue = JobQueue(**kwargs)
    await queue.start()
    return queue


# ----------------------------------------------------------------------
# Coalescing (the acceptance criterion)
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_n_identical_plus_m_distinct_run_m_plus_1_sims(self, tmp_path):
        N, distinct = 6, [OTHER, THIRD]  # M = 2

        async def main():
            ctx = ExperimentContext(cache_dir=tmp_path / "cache")
            queue = await _started_queue(context=ctx, sim_workers=2)
            identical = [await queue.submit(POINT) for _ in range(N)]
            others = [await queue.submit(p) for p in distinct]
            jobs = [await queue.result(j, timeout=300)
                    for j in identical + others]
            await queue.close()
            return ctx, queue, jobs

        ctx, queue, jobs = run(main())
        assert all(job.status == jb.DONE for job in jobs)
        # Exactly M + 1 simulations, counted by the *engine*.
        assert ctx.metrics.value("sim.runs") == len(distinct) + 1

        waiters = jobs[:N]
        # All N waiters got the bit-identical result...
        first_doc = waiters[0].result.to_dict()
        assert all(job.result == waiters[0].result for job in waiters)
        assert all(job.result.to_dict() == first_doc for job in waiters)
        # ...the primary ran, the other N-1 coalesced onto it...
        primary, rest = waiters[0], waiters[1:]
        assert primary.coalesced_into is None
        assert not primary.manifest.coalesced
        for job in rest:
            assert job.coalesced_into == primary.job_id
            assert job.manifest.coalesced
            # Coalescing is serving provenance: run identity unchanged.
            assert job.manifest.digest() == primary.manifest.digest()
        # ...and the books agree.
        assert queue.metrics.value("service.jobs_submitted") == N + 2
        assert queue.metrics.value("service.jobs_coalesced") == N - 1
        assert queue.metrics.value("service.jobs_completed") == N + 2

    def test_attach_while_running_still_coalesces(self):
        started = threading.Event()
        release = threading.Event()
        holder = {}

        def blocking_runner(points):
            started.set()
            assert release.wait(timeout=60)
            holder["queue"].context.simulate_many(list(points))

        async def main():
            queue = JobQueue(runner=blocking_runner)
            holder["queue"] = queue
            await queue.start()
            first = await queue.submit(POINT)
            await asyncio.to_thread(started.wait, 60)
            # The batch is now executing; this submission must attach
            # to the in-flight run, not enqueue a second simulation.
            late = await queue.submit(POINT)
            assert queue.status(late)["status"] == jb.RUNNING
            release.set()
            jobs = [await queue.result(j, timeout=300)
                    for j in (first, late)]
            await queue.close()
            return queue, jobs

        queue, (primary, attached) = run(main())
        assert queue.context.metrics.value("sim.runs") == 1
        assert attached.coalesced_into == primary.job_id
        assert attached.manifest.coalesced
        assert attached.result == primary.result

    def test_cache_served_fast_path(self, tmp_path):
        async def main():
            ctx = ExperimentContext(cache_dir=tmp_path / "cache")
            queue = await _started_queue(context=ctx)
            first = await queue.result(await queue.submit(POINT),
                                       timeout=300)
            again = await queue.result(await queue.submit(POINT),
                                       timeout=10)
            await queue.close()
            return queue, first, again

        queue, first, again = run(main())
        assert not first.manifest.from_cache
        assert again.status == jb.DONE
        assert again.manifest.from_cache
        assert again.result == first.result
        assert queue.metrics.value("service.cache_served") == 1
        assert queue.context.metrics.value("sim.runs") == 1


# ----------------------------------------------------------------------
# Queue mechanics
# ----------------------------------------------------------------------
class TestQueueMechanics:
    def test_priority_order(self):
        order = []
        gate = threading.Event()

        def recording_runner(points):
            if not gate.is_set():  # first batch: wait to pile up work
                gate.wait(timeout=60)
            order.extend(points)

        async def main():
            queue = JobQueue(runner=recording_runner, batch_limit=1)
            await queue.start()
            filler = await queue.submit(POINT)
            low = await queue.submit(OTHER, priority=0)
            high = await queue.submit(THIRD, priority=5)
            gate.set()
            for job_id in (filler, low, high):
                await queue.result(job_id, timeout=60)
            await queue.close()

        run(main())
        # The high-priority point overtook the earlier low one.
        assert order.index(THIRD) < order.index(OTHER)

    def test_cancel_queued_job(self):
        async def main():
            queue = JobQueue()  # never started: jobs stay queued
            job_id = await queue.submit(POINT)
            assert await queue.cancel(job_id) is True
            job = await queue.result(job_id, timeout=5)
            assert job.status == jb.CANCELLED
            # Terminal jobs cannot be re-cancelled.
            assert await queue.cancel(job_id) is False
            assert queue.metrics.value("service.jobs_cancelled") == 1
            await queue.close()

        run(main())

    def test_cancel_primary_promotes_waiter(self):
        async def main():
            queue = JobQueue()
            first = await queue.submit(POINT)
            second = await queue.submit(POINT)
            assert queue.status(second)["coalesced_into"] == first
            assert await queue.cancel(first) is True
            # The survivor is primary now.
            assert queue.status(second)["coalesced_into"] is None
            await queue.start()
            job = await queue.result(second, timeout=300)
            await queue.close()
            return job

        job = run(main())
        assert job.status == jb.DONE
        assert not job.manifest.coalesced

    def test_invalid_submissions_rejected(self):
        async def main():
            queue = JobQueue()
            with pytest.raises(ServiceError):
                await queue.submit(("sparsepipe", "pr"))  # not a 3-tuple
            with pytest.raises(ServiceError):
                await queue.submit(("sparsepipe", "nope", "gy"))
            with pytest.raises(ServiceError):
                await queue.submit(("sparsepipe", "pr", "nope"))
            with pytest.raises(ServiceError):
                queue.status("job-999999")
            await queue.close()

        run(main())

    def test_batch_failure_surfaces_per_job(self):
        def exploding_runner(points):
            raise RuntimeError("simulator caught fire")

        async def main():
            queue = JobQueue(runner=exploding_runner)
            await queue.start()
            job_id = await queue.submit(POINT)
            job = await queue.result(job_id, timeout=60)
            await queue.close()
            return queue, job

        queue, job = run(main())
        assert job.status == jb.FAILED
        assert "simulator caught fire" in job.error
        assert job.result is None
        assert queue.metrics.value("service.jobs_failed") == 1

    def test_closed_queue_rejects_submissions(self):
        async def main():
            queue = JobQueue()
            await queue.close()
            with pytest.raises(ServiceError):
                await queue.submit(POINT)

        run(main())


# ----------------------------------------------------------------------
# Spool / crash recovery
# ----------------------------------------------------------------------
class TestSpoolRecovery:
    def test_unfinished_jobs_reenqueue_on_restart(self, tmp_path):
        spool_dir = tmp_path / "spool"

        async def crash_phase():
            # Never started: submissions reach the spool but no
            # dispatcher ever runs them — a crash before execution.
            queue = JobQueue(spool_dir=spool_dir)
            one = await queue.submit(POINT)
            two = await queue.submit(POINT)       # coalesces onto one
            three = await queue.submit(OTHER, priority=3)
            queue._executor.shutdown(wait=False)  # die without close()
            return one, two, three

        one, two, three = run(crash_phase())
        docs = Spool(spool_dir).load()
        assert [d["job_id"] for d in docs] == [one, two, three]
        assert all(d["status"] == jb.QUEUED for d in docs)

        async def recovery_phase():
            queue = JobQueue(spool_dir=spool_dir)
            await queue.start()
            jobs = [await queue.result(j, timeout=300)
                    for j in (one, two, three)]
            # The id counter resumed past the spool: no reuse.
            fresh = await queue.submit(THIRD)
            await queue.result(fresh, timeout=300)
            await queue.close()
            return queue, jobs, fresh

        queue, jobs, fresh = run(recovery_phase())
        assert [job.status for job in jobs] == [jb.DONE] * 3
        assert jobs[1].coalesced_into == jobs[0].job_id
        assert jobs[1].result == jobs[0].result
        assert jb.Job(job_id=fresh, point=THIRD).seq > 3
        assert queue.metrics.value("service.jobs_recovered") == 3

    def test_terminal_jobs_are_not_recovered(self, tmp_path):
        spool_dir = tmp_path / "spool"
        spool = Spool(spool_dir)
        spool.write(jb.Job(job_id=jb.job_id_for(1), point=POINT,
                           status=jb.DONE))
        spool.write(jb.Job(job_id=jb.job_id_for(2), point=POINT,
                           status=jb.CANCELLED))
        (spool_dir / "job-000001.json.999.0.tmp").write_text("{torn")

        async def main():
            queue = JobQueue(spool_dir=spool_dir)
            await queue.start()
            depth = queue.depth()
            await queue.join(timeout=10)
            await queue.close()
            return depth

        assert run(main()) == 0
        assert list(spool_dir.glob("*.tmp")) == []  # debris swept

    def test_spool_records_update_across_lifecycle(self, tmp_path):
        spool_dir = tmp_path / "spool"

        async def main():
            queue = await _started_queue(spool_dir=spool_dir)
            job_id = await queue.submit(POINT)
            await queue.result(job_id, timeout=300)
            await queue.close()
            return job_id

        job_id = run(main())
        (doc,) = Spool(spool_dir).load()
        assert doc["job_id"] == job_id
        assert doc["status"] == jb.DONE
        assert doc["manifest"]["status"] == "ok"


# ----------------------------------------------------------------------
# Daemon + client, end to end
# ----------------------------------------------------------------------
class TestDaemonEndToEnd:
    """Every daemon here binds ``port=0`` (the kernel picks a free
    port) and advertises it through an endpoint file — the same
    discovery clients and CI use — so no test ever hardcodes a port or
    races another suite for one."""

    def test_full_client_session(self, tmp_path):
        ctx = ExperimentContext(cache_dir=tmp_path / "cache",
                                cache_max_bytes=1 << 22)
        endpoint = tmp_path / "endpoint.json"
        with BackgroundDaemon(context=ctx, port=0, endpoint_file=endpoint,
                              spool_dir=tmp_path / "spool"):
            host, port = endpoint_from_file(endpoint)
            client = ServiceClient(host=host, port=port, timeout_s=300.0)
            assert client.ping()

            points = [list(POINT), list(POINT), list(OTHER)]
            job_ids = client.submit_many(points)
            docs = client.wait_all(job_ids, timeout_s=300.0)
            assert [d["status"] for d in docs] == [jb.DONE] * 3
            assert docs[1]["coalesced_into"] == docs[0]["job_id"]
            assert docs[1]["manifest"]["coalesced"] is True
            assert docs[0]["result"] == docs[1]["result"]

            # Resubmit: a warm hit, no new simulation.
            again = client.result(client.submit(list(POINT)),
                                  timeout_s=60.0)
            assert again["status"] == jb.DONE
            assert again["manifest"]["from_cache"] is True

            stats = client.stats()
            assert stats["depth"] == 0
            assert stats["jobs"] == {jb.DONE: 4}
            counters = stats["metrics"]
            assert counters["service.jobs_submitted"]["value"] == 4
            assert counters["service.jobs_coalesced"]["value"] == 1
            assert counters["service.cache_served"]["value"] == 1
            assert counters["sim.runs"]["value"] == 2

            status = client.status(job_ids[0])
            assert status["status"] == jb.DONE
            assert "result" not in status  # status is the light doc

            with pytest.raises(ServiceError):
                client.status("job-424242")
            with pytest.raises(ServiceError):
                client.submit(["sparsepipe", "nope", "gy"])
            client.shutdown()
        # Spool survives the daemon for post-mortems.
        docs = Spool(tmp_path / "spool").load()
        assert len(docs) == 4

    def test_client_errors_without_daemon(self):
        with pytest.raises(ServiceError):
            ServiceClient(port=0)
        client = ServiceClient(port=1, timeout_s=0.5)  # nothing listens
        with pytest.raises(ServiceError):
            client.ping()

    def test_unknown_op_is_clean_protocol_error(self, tmp_path):
        endpoint = tmp_path / "endpoint.json"
        with BackgroundDaemon(port=0, endpoint_file=endpoint,
                              spool_dir=tmp_path / "spool"):
            client = ServiceClient(*endpoint_from_file(endpoint))
            with pytest.raises(ServiceError, match="unknown op"):
                client.request("frobnicate")
            client.shutdown()


# ----------------------------------------------------------------------
# The real CLI daemon, as a subprocess
# ----------------------------------------------------------------------
class TestDaemonCliEndToEnd:
    """Boots the actual ``python -m repro serve`` process with
    ``--port 0`` and discovers the kernel-chosen port through
    ``--endpoint-file`` — the anti-flake contract: no fixed port to
    collide on, no readiness sleep to mistime (the endpoint file is
    written tmp-rename only after the socket is bound)."""

    def _boot(self, tmp_path, *extra):
        endpoint = tmp_path / "endpoint.json"
        env = dict(os.environ)
        lib_root = str(Path(__file__).resolve().parents[1] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            lib_root if not existing
            else lib_root + os.pathsep + existing)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", "0", "--endpoint-file", str(endpoint),
             "--spool", str(tmp_path / "spool"), *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env)
        return proc, endpoint

    @staticmethod
    def _discover(proc, endpoint, budget_s=120.0):
        """Wait for the advertised endpoint; fail loudly (with the
        daemon's output) instead of hanging if it died on boot."""
        deadline = time.monotonic() + budget_s
        while time.monotonic() < deadline:
            if endpoint.exists():
                host, port = endpoint_from_file(endpoint)
                return ServiceClient(host=host, port=port, timeout_s=300.0)
            if proc.poll() is not None:
                out = proc.stdout.read().decode(errors="replace")
                pytest.fail(f"daemon exited {proc.returncode} before "
                            f"advertising its endpoint:\n{out}")
            time.sleep(0.05)
        proc.kill()
        pytest.fail("daemon never advertised its endpoint")

    @staticmethod
    def _stop(client, proc):
        try:
            if client is not None:
                client.shutdown()
                proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_cli_daemon_session_via_endpoint_discovery(self, tmp_path):
        proc, endpoint = self._boot(tmp_path)
        client = None
        try:
            client = self._discover(proc, endpoint)
            assert client.ping()
            job_ids = client.submit_many([list(POINT), list(POINT),
                                          list(OTHER)])
            docs = client.wait_all(job_ids, timeout_s=300.0)
            assert [d["status"] for d in docs] == [jb.DONE] * 3
            assert docs[0]["result"] == docs[1]["result"]
            assert client.stats()["metrics"]["sim.runs"]["value"] == 2
        finally:
            self._stop(client, proc)
        assert proc.returncode == 0
        # The spool journal survives the daemon for post-mortems.
        assert len(Spool(tmp_path / "spool").load()) == 3

    @pytest.mark.slow
    def test_cli_daemon_stress_many_clients(self, tmp_path):
        """Stress variant: concurrent clients hammering one daemon
        with duplicate submissions; the engine must still run each
        unique point exactly once."""
        proc, endpoint = self._boot(tmp_path, "--scheduler", "localpool")
        points = [list(POINT), list(OTHER), list(THIRD)]
        client = None
        try:
            client = self._discover(proc, endpoint)
            outcomes = []

            def hammer():
                mine = ServiceClient(*endpoint_from_file(endpoint),
                                     timeout_s=300.0)
                ids = mine.submit_many(points * 3)
                outcomes.append(mine.wait_all(ids, timeout_s=300.0))

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            assert len(outcomes) == 4
            for docs in outcomes:
                assert [d["status"] for d in docs] == \
                    [jb.DONE] * len(points) * 3
            counters = client.stats()["metrics"]
            assert counters["sim.runs"]["value"] == len(points)
        finally:
            self._stop(client, proc)
        assert proc.returncode == 0
