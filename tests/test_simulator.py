"""Integration tests of the Sparsepipe simulator and baseline models:
conservation invariants and the paper's headline qualitative results."""

import numpy as np
import pytest

from repro.arch import SparsepipeConfig, SparsepipeSimulator, CPU_DDR4
from repro.arch.profile import WorkloadProfile
from repro.baselines import CPUModel, GPUModel, IdealAccelerator, OracleAccelerator
from repro.errors import ConfigError
from repro.matrices import banded_mesh, bipartite_block, erdos_renyi
from repro.preprocess import preprocess


def make_profile(**overrides) -> WorkloadProfile:
    base = dict(
        name="pr",
        semiring_name="mul_add",
        has_oei=True,
        n_iterations=10,
        path_ewise_ops=2,
        side_ewise_ops=1,
        aux_streams=0,
        writeback_streams=1,
    )
    base.update(overrides)
    return WorkloadProfile(**base)


@pytest.fixture(scope="module")
def banded_prep():
    return preprocess(banded_mesh(600, 20, 5000, seed=3), reorder=None, block_size=None)


@pytest.fixture(scope="module")
def skewed_prep():
    return preprocess(
        bipartite_block(600, 6000, split=0.45, corner_share=0.9, seed=4),
        reorder=None,
        block_size=None,
    )


class TestConservation:
    def test_matrix_loaded_once_per_pair_when_window_fits(self, banded_prep):
        sim = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32))
        profile = make_profile(n_iterations=10)
        result = sim.run(profile, banded_prep)  # paper-size buffer: fits
        matrix_bytes = LoadPlanCache.get(banded_prep).matrix_stream_bytes
        # 5 pairs -> 5 matrix streams, no reloads.
        assert result.traffic.bytes_by_category["csr_reload"] == 0.0
        streamed = (
            result.traffic.bytes_by_category["csc"]
            + result.traffic.bytes_by_category["csr_eager"]
        )
        assert streamed == pytest.approx(5 * matrix_bytes, rel=1e-6)

    def test_odd_iteration_adds_one_stream(self, banded_prep):
        sim = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32))
        result = sim.run(make_profile(n_iterations=11), banded_prep)
        matrix_bytes = LoadPlanCache.get(banded_prep).matrix_stream_bytes
        assert result.traffic.matrix_bytes == pytest.approx(6 * matrix_bytes, rel=1e-6)

    def test_non_oei_streams_every_iteration(self, banded_prep):
        sim = SparsepipeSimulator(SparsepipeConfig(subtensor_cols=32))
        result = sim.run(make_profile(has_oei=False, n_iterations=10), banded_prep)
        matrix_bytes = LoadPlanCache.get(banded_prep).matrix_stream_bytes
        assert result.traffic.matrix_bytes == pytest.approx(10 * matrix_bytes, rel=1e-6)

    def test_small_buffer_causes_reload_traffic(self, skewed_prep):
        tight = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=32, buffer_bytes=8 * 1024)
        )
        result = tight.run(make_profile(n_iterations=4), skewed_prep)
        assert result.oom_evicted_bytes > 0
        assert result.traffic.bytes_by_category["csr_reload"] > 0

    def test_reload_equals_evicted(self, skewed_prep):
        tight = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=32, buffer_bytes=8 * 1024)
        )
        result = tight.run(make_profile(n_iterations=4), skewed_prep)
        assert result.traffic.bytes_by_category["csr_reload"] == pytest.approx(
            result.oom_evicted_bytes, rel=1e-9
        )

    def test_buffer_peak_respects_capacity(self, skewed_prep):
        capacity = 16 * 1024
        tight = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=32, buffer_bytes=capacity,
                             csr_window_fraction=1.0)
        )
        result = tight.run(make_profile(n_iterations=4), skewed_prep)
        # Peak can exceed capacity by at most one admit batch before
        # eviction runs (enforcement is per step).
        one_subtensor = max(
            LoadPlanCache.get(skewed_prep).os_nnz.max() * 12.0, 12.0
        )
        assert result.buffer_peak_bytes <= capacity + one_subtensor * 2


class LoadPlanCache:
    _cache = {}

    @classmethod
    def get(cls, prep):
        key = id(prep)
        if key not in cls._cache:
            from repro.arch.loaders import LoadPlan

            cls._cache[key] = LoadPlan.from_matrix(prep, subtensor_cols=32)
        return cls._cache[key]


class TestPaperQualitative:
    """The headline claims of Section VI, as assertions."""

    def test_oei_beats_ideal_on_oei_workloads(self, banded_prep):
        cfg = SparsepipeConfig(subtensor_cols=32)
        sp = SparsepipeSimulator(cfg).run(make_profile(n_iterations=20), banded_prep)
        ideal = IdealAccelerator(cfg).run(make_profile(n_iterations=20), banded_prep)
        speedup = sp.speedup_over(ideal)
        assert 1.2 < speedup < 3.6  # paper: 1.21x-2.62x geomean, 3.59x max

    def test_non_oei_roughly_ties_ideal(self, banded_prep):
        cfg = SparsepipeConfig(subtensor_cols=32)
        profile = make_profile(has_oei=False, n_iterations=20)
        sp = SparsepipeSimulator(cfg).run(profile, banded_prep)
        ideal = IdealAccelerator(cfg).run(profile, banded_prep)
        assert 0.7 < sp.speedup_over(ideal) < 1.3  # paper: 0.75x-1.20x

    def test_oracle_is_upper_bound(self, banded_prep, skewed_prep):
        cfg = SparsepipeConfig(subtensor_cols=32)
        for prep in (banded_prep, skewed_prep):
            profile = make_profile(n_iterations=12)
            sp = SparsepipeSimulator(cfg).run(profile, prep)
            oracle = OracleAccelerator(cfg).run(profile, prep)
            assert oracle.seconds <= sp.seconds * 1.001

    def test_sparsepipe_beats_cpu_and_gpu(self, banded_prep):
        cfg = SparsepipeConfig(subtensor_cols=32)
        profile = make_profile(n_iterations=20)
        sp = SparsepipeSimulator(cfg).run(profile, banded_prep)
        cpu = CPUModel().run(profile, banded_prep)
        gpu = GPUModel().run(profile, banded_prep)
        assert sp.speedup_over(cpu) > 5.0
        assert sp.speedup_over(gpu) > 1.5

    def test_iso_cpu_still_beats_cpu(self, banded_prep):
        profile = make_profile(n_iterations=20)
        paper_nnz = banded_prep.matrix.nnz * 200  # consistent scaling
        iso_cpu = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=32).with_memory(CPU_DDR4)
        ).run(profile, banded_prep, paper_nnz=paper_nnz)
        cpu = CPUModel().run(profile, banded_prep, paper_nnz=paper_nnz)
        # Paper: 1.31x-3.57x from the OEI dataflow alone.
        assert 1.1 < iso_cpu.speedup_over(cpu) < 4.5

    def test_eager_is_never_hurts(self, banded_prep):
        profile = make_profile(n_iterations=10)
        on = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=32, eager_is=True)
        ).run(profile, banded_prep)
        off = SparsepipeSimulator(
            SparsepipeConfig(subtensor_cols=32, eager_is=False)
        ).run(profile, banded_prep)
        assert on.cycles <= off.cycles * 1.001

    def test_bandwidth_utilization_high_when_memory_bound(self, banded_prep):
        cfg = SparsepipeConfig(subtensor_cols=32)
        result = SparsepipeSimulator(cfg).run(make_profile(n_iterations=20), banded_prep)
        assert result.bandwidth_utilization > 0.6

    def test_compute_heavy_profile_lowers_utilization(self, banded_prep):
        cfg = SparsepipeConfig(subtensor_cols=32)
        light = SparsepipeSimulator(cfg).run(make_profile(n_iterations=10), banded_prep)
        heavy = SparsepipeSimulator(cfg).run(
            make_profile(n_iterations=10, path_ewise_ops=40, side_ewise_ops=40),
            banded_prep,
        )
        assert heavy.bandwidth_utilization < light.bandwidth_utilization

    def test_bandwidth_samples_cover_run(self, banded_prep):
        cfg = SparsepipeConfig(subtensor_cols=32)
        result = SparsepipeSimulator(cfg).run(make_profile(n_iterations=6), banded_prep)
        assert len(result.bandwidth_samples) == 25
        shares = result.bandwidth_samples[0].category_share
        assert abs(sum(shares.values()) - 1.0) < 1e-6 or sum(shares.values()) == 0.0


class TestProfileValidation:
    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigError):
            make_profile(n_iterations=0)

    def test_rejects_bad_activity(self):
        with pytest.raises(ConfigError):
            make_profile(activity=(1.5,))

    def test_activity_defaults_to_one(self):
        profile = make_profile(activity=(0.5,))
        assert profile.activity_at(0) == 0.5
        assert profile.activity_at(5) == 1.0

    def test_from_program(self):
        from repro.workloads import get_workload

        prog = get_workload("pr").program()
        profile = WorkloadProfile.from_program(prog, n_iterations=7)
        assert profile.semiring_name == "mul_add"
        assert profile.has_oei
        assert profile.path_ewise_ops == 2
