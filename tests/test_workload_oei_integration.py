"""Integration: real workloads' *compiled programs* executed under the
OEI pair schedule, validated against sequential execution and against
the independent functional implementations."""

import numpy as np
import pytest

from repro.graphblas import Matrix
from repro.matrices import erdos_renyi, watts_strogatz
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def graph():
    return Matrix(erdos_renyi(70, 560, seed=17))


VALIDATABLE = ("pr", "sssp", "kcore", "label", "knn")


class TestValidateOEI:
    @pytest.mark.parametrize("name", VALIDATABLE)
    def test_oei_matches_reference(self, graph, name):
        trace = get_workload(name).validate_oei(graph, n_iterations=6)
        assert trace.n_iterations == 6

    @pytest.mark.parametrize("subtensor_cols", [1, 5, 16, 200])
    def test_pagerank_any_subtensor_width(self, graph, subtensor_cols):
        get_workload("pr").validate_oei(
            graph, n_iterations=4, subtensor_cols=subtensor_cols
        )

    def test_unbound_workload_raises(self, graph):
        with pytest.raises(NotImplementedError):
            get_workload("cg").oei_bindings(graph)

    def test_small_world_matrix(self):
        graph = Matrix(watts_strogatz(120, k=4, rewire=0.3, seed=5))
        get_workload("sssp").validate_oei(graph, n_iterations=5)


class TestOEIAgreesWithFunctional:
    def test_pagerank_program_matches_functional_run(self, graph):
        """The compiled program iterated by the OEI executor computes
        the same ranks as the independent GraphBLAS-mini PageRank."""
        workload = get_workload("pr")
        functional = workload.run_functional(graph)
        trace = workload.validate_oei(
            graph, n_iterations=functional.n_iterations
        )
        np.testing.assert_allclose(
            trace.final_x, functional.output, rtol=1e-8, atol=1e-12
        )

    def test_sssp_program_matches_functional_run(self, graph):
        workload = get_workload("sssp")
        functional = workload.run_functional(graph)
        trace = workload.validate_oei(
            graph, n_iterations=functional.n_iterations
        )
        ours = trace.final_x
        theirs = functional.output
        finite = np.isfinite(theirs)
        np.testing.assert_allclose(ours[finite], theirs[finite])
        assert np.all(np.isinf(ours[~finite]))

    def test_kcore_program_matches_functional_run(self, graph):
        workload = get_workload("kcore")
        functional = workload.run_functional_pattern(graph, k=workload.k)
        trace = workload.validate_oei(
            graph, n_iterations=functional.n_iterations
        )
        np.testing.assert_array_equal(
            trace.final_x > 0, functional.output > 0
        )

    def test_knn_program_matches_functional_run(self, graph):
        workload = get_workload("knn")
        functional = workload.run_functional(graph, seeds=workload.seeds, seed=0)
        # One OEI iteration = one two-hop round? No: the compiled KNN
        # program fuses the two vxm of ONE round into an OS/IS pair, so
        # each executor *pair* is one functional iteration.
        trace = workload.validate_oei(
            graph, n_iterations=2 * functional.n_iterations
        )
        reach = (trace.final_x != 0).astype(float)
        merged = np.maximum(reach, functional.output)
        # The executor's plain reachability is a superset relation.
        assert np.array_equal(merged, np.maximum(functional.output, reach))
