"""Batched event synthesis: golden byte-identity plus backend routing.

The vectorized backend does not run the per-step loop, yet observed
runs must be indistinguishable from the reference stream — the
synthesized replay (:class:`~repro.engine.instrumentation.ReplayBatch`)
claims *byte-identical* artifacts, not merely equal summaries. This
suite executes that claim:

- golden grid: every registered workload on the ``gy`` matrix, flat
  and banked DRAM, comparing the serialized Chrome trace, the metrics
  registry document and digest, the raw ordered event log (the
  per-event ``dispatch`` path), and the ``SimResult`` itself;
- a hypothesis property over random matrices and synthetic profiles
  with observers attached;
- ``run_engine`` routing: the backend default comes from the config
  (objects missing the attribute inherit the documented
  ``"vectorized"`` default), and an ``observers=`` request a backend
  cannot honor raises SP907 instead of silently downgrading.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import SparsepipeConfig
from repro.arch.simulator import SparsepipeSimulator
from repro.engine import registry
from repro.engine.instrumentation import EventLogObserver
from repro.errors import ConfigError
from repro.experiments.runner import ExperimentContext
from repro.matrices.suite import SUITE
from repro.obs.metrics import MetricsObserver
from repro.obs.timeline import TimelineObserver, validate_chrome_trace
from repro.preprocess.pipeline import preprocess
from tests.strategies import coo_matrices, subtensor_widths
from tests.test_backend_differential import synthetic_profiles


@pytest.fixture(scope="module")
def context():
    return ExperimentContext()


def observed_artifacts(config, profile, prep, paper_nnz=None):
    """One observed run -> everything the byte-identity claim covers."""
    timeline = TimelineObserver()
    metrics = MetricsObserver()
    log = EventLogObserver()
    sim = SparsepipeSimulator(config)
    result = sim.run(
        profile, prep, paper_nnz=paper_nnz,
        observers=(timeline, metrics, log),
    )
    registry_ = metrics.finalize(result)
    trace = timeline.to_chrome_trace()
    validate_chrome_trace(trace)
    return {
        "result": result,
        "trace": json.dumps(trace, sort_keys=True),
        "metrics": registry_.to_dict(),
        "digest": registry_.digest(),
        "events": log.events,
        "backend": sim.last_backend,
    }


class TestGoldenByteIdentity:
    """Synthesized replay vs in-loop reference stream, artifact by
    artifact, over every paper workload and both DRAM models."""

    @pytest.mark.parametrize("detailed_dram", [False, True],
                             ids=["flat", "banked"])
    def test_every_workload_matches(self, context, detailed_dram):
        matrix = "gy"
        prep = context.prepared(matrix)
        nnz = SUITE[matrix].paper_nnz
        for workload in context.all_workloads():
            profile = context.profile(workload, matrix)
            ref = observed_artifacts(
                SparsepipeConfig(backend="reference",
                                 detailed_dram=detailed_dram),
                profile, prep, paper_nnz=nnz,
            )
            vec = observed_artifacts(
                SparsepipeConfig(backend="vectorized",
                                 detailed_dram=detailed_dram),
                profile, prep, paper_nnz=nnz,
            )
            assert vec["backend"] == "vectorized", workload
            for artifact in ("result", "trace", "metrics", "digest", "events"):
                assert ref[artifact] == vec[artifact], (
                    f"{workload}: {artifact} differs"
                )


class TestPropertySynthesis:
    @settings(max_examples=15, deadline=None)
    @given(
        coo=coo_matrices(max_n=40),
        profile=synthetic_profiles(),
        width=subtensor_widths(4, 8, 16, 37, 64),
        buffer_bytes=st.sampled_from([4096, 20000, None]),
        detailed=st.booleans(),
    )
    def test_random_observed_runs_byte_identical(
        self, coo, profile, width, buffer_bytes, detailed
    ):
        prep = preprocess(coo)
        artifacts = [
            observed_artifacts(
                SparsepipeConfig(
                    backend=backend, subtensor_cols=width,
                    buffer_bytes=buffer_bytes, detailed_dram=detailed,
                ),
                profile, prep,
            )
            for backend in ("reference", "vectorized")
        ]
        ref, vec = artifacts
        assert vec["backend"] == "vectorized"
        for artifact in ("result", "trace", "metrics", "digest", "events"):
            assert ref[artifact] == vec[artifact], f"{artifact} differs"


class _StubEngine:
    """Records what run_engine forwarded to it."""

    def __init__(self, config=None):
        self.config = config
        self.calls = []

    def run(self, profile, matrix, paper_nnz=None, **kwargs):
        self.calls.append(kwargs)
        return "ran"


class TestRunEngineRouting:
    def test_backend_default_is_documented_vectorized(self):
        assert SparsepipeConfig.backend == "vectorized"
        assert registry._default_backend() == "vectorized"

    def test_config_missing_backend_attr_inherits_default(self, monkeypatch):
        """A config object without a ``backend`` attribute (baseline
        configs) must inherit the vectorized default, not crash and not
        silently pin the reference loop."""
        engines = []

        def factory(config=None):
            engine = _StubEngine(config)
            engines.append(engine)
            return engine

        monkeypatch.setitem(
            registry._REGISTRY, "stub-observable",
            registry.ArchSpec(
                name="stub-observable", factory=factory, takes_config=True,
                description="test stub", observable=True,
            ),
        )

        class NoBackendConfig:
            pass

        out = registry.run_engine(
            "stub-observable", NoBackendConfig(), profile=None, matrix=None
        )
        assert out == "ran"
        # Vectorized default -> the zero-observer contract is requested
        # explicitly rather than leaving the engine to guess.
        assert engines[0].calls == [{"observers": ()}]

    def test_reference_config_takes_plain_run(self, monkeypatch):
        engines = []

        def factory(config=None):
            engine = _StubEngine(config)
            engines.append(engine)
            return engine

        monkeypatch.setitem(
            registry._REGISTRY, "stub-observable",
            registry.ArchSpec(
                name="stub-observable", factory=factory, takes_config=True,
                description="test stub", observable=True,
            ),
        )
        registry.run_engine(
            "stub-observable", SparsepipeConfig(backend="reference"),
            profile=None, matrix=None,
        )
        assert engines[0].calls == [{}]

    def test_observers_on_non_observable_arch_raises_sp907(self):
        with pytest.raises(ConfigError, match=r"\[SP907\]"):
            registry.run_engine(
                "cpu", None, profile=None, matrix=None,
                observers=[TimelineObserver()],
            )

    def test_explicit_observers_forwarded_verbatim(self, monkeypatch):
        engines = []

        def factory(config=None):
            engine = _StubEngine(config)
            engines.append(engine)
            return engine

        monkeypatch.setitem(
            registry._REGISTRY, "stub-observable",
            registry.ArchSpec(
                name="stub-observable", factory=factory, takes_config=True,
                description="test stub", observable=True,
            ),
        )
        obs = (TimelineObserver(),)
        registry.run_engine(
            "stub-observable", SparsepipeConfig(), profile=None, matrix=None,
            observers=obs,
        )
        assert engines[0].calls == [{"observers": obs}]
