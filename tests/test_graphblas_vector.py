"""Tests for the GraphBLAS-mini Vector container."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.graphblas import Vector


class TestConstruction:
    def test_dense(self):
        v = Vector.dense(4, fill=2.5)
        assert v.nvals == 4
        assert np.array_equal(v.to_dense(), [2.5] * 4)

    def test_empty(self):
        v = Vector.empty(5)
        assert v.nvals == 0

    def test_from_entries(self):
        v = Vector.from_entries(5, [1, 3], [7.0, 8.0])
        assert v.nvals == 2
        assert v.get(3) == 8.0

    def test_from_entries_out_of_range(self):
        with pytest.raises(IndexError):
            Vector.from_entries(3, [3], [1.0])

    def test_from_entries_length_mismatch(self):
        with pytest.raises(ShapeError):
            Vector.from_entries(3, [0, 1], [1.0])

    def test_negative_size(self):
        with pytest.raises(ShapeError):
            Vector(-1)

    def test_values_shape_checked(self):
        with pytest.raises(ShapeError):
            Vector(3, values=np.zeros(4))


class TestAccess:
    def test_get_absent_with_default(self):
        v = Vector.empty(3)
        assert v.get(0, default=-1.0) == -1.0

    def test_get_absent_without_default_raises(self):
        with pytest.raises(KeyError):
            Vector.empty(3).get(0)

    def test_get_out_of_range(self):
        with pytest.raises(IndexError):
            Vector.dense(3).get(3)

    def test_set_makes_present(self):
        v = Vector.empty(3)
        v.set(1, 4.0)
        assert v.nvals == 1 and v.get(1) == 4.0

    def test_entries(self):
        v = Vector.from_entries(6, [4, 2], [9.0, 3.0])
        idx, vals = v.entries()
        assert list(idx) == [2, 4]
        assert list(vals) == [3.0, 9.0]

    def test_to_dense_fill(self):
        v = Vector.from_entries(3, [1], [5.0])
        assert np.array_equal(v.to_dense(fill=-2.0), [-2.0, 5.0, -2.0])

    def test_clear(self):
        v = Vector.dense(3)
        v.clear()
        assert v.nvals == 0

    def test_dup_is_deep(self):
        v = Vector.dense(3, fill=1.0)
        w = v.dup()
        w.set(0, 99.0)
        assert v.get(0) == 1.0

    def test_isclose_structure_sensitive(self):
        a = Vector.from_entries(3, [0], [1.0])
        b = Vector.from_entries(3, [1], [1.0])
        assert not a.isclose(b)
        assert a.isclose(a.dup())
