"""Shared state for the benchmark harness.

One :class:`ExperimentContext` is shared across all benches so the
(workload x matrix x architecture) sweep is computed once; each bench
then times and prints its own table/figure.

The sweep can be subset for smoke runs (CI) via environment variables:
``REPRO_BENCH_WORKLOADS=pr,sssp REPRO_BENCH_MATRICES=gy,ro``. Benches
that assert the paper's headline claims only do so on the full sweep —
the bands are meaningless on a subset. The helpers themselves live in
:mod:`repro.testing`, shared with ``tests/conftest.py``.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentContext
from repro.testing import env_subset, is_full_sweep, run_once  # noqa: F401


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext(
        workloads=env_subset("REPRO_BENCH_WORKLOADS"),
        matrices=env_subset("REPRO_BENCH_MATRICES"),
    )
