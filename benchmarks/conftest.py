"""Shared state for the benchmark harness.

One :class:`ExperimentContext` is shared across all benches so the
(workload x matrix x architecture) sweep is computed once; each bench
then times and prints its own table/figure.

The sweep can be subset for smoke runs (CI) via environment variables:
``REPRO_BENCH_WORKLOADS=pr,sssp REPRO_BENCH_MATRICES=gy,ro``. Benches
that assert the paper's headline claims only do so on the full sweep —
the bands are meaningless on a subset.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import pytest

from repro.experiments.runner import ExperimentContext


def _env_subset(name: str) -> Optional[Tuple[str, ...]]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def is_full_sweep() -> bool:
    """True when no env-var subsetting is active (claims may be asserted)."""
    return (
        _env_subset("REPRO_BENCH_WORKLOADS") is None
        and _env_subset("REPRO_BENCH_MATRICES") is None
    )


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext(
        workloads=_env_subset("REPRO_BENCH_WORKLOADS"),
        matrices=_env_subset("REPRO_BENCH_MATRICES"),
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Time a driver exactly once (the sweeps are deterministic and
    heavy; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
