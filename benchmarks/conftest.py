"""Shared state for the benchmark harness.

One :class:`ExperimentContext` is shared across all benches so the
(workload x matrix x architecture) sweep is computed once; each bench
then times and prints its own table/figure.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext()


def run_once(benchmark, fn, *args, **kwargs):
    """Time a driver exactly once (the sweeps are deterministic and
    heavy; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
