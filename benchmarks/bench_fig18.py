"""Fig 18: fraction of the oracle accelerator's performance."""

from benchmarks.conftest import run_once
from repro.experiments import fig18


def test_fig18_fraction_of_oracle(benchmark, context):
    rows = run_once(benchmark, fig18.run, context)
    fig18.main(context)
    # The oracle is an upper bound everywhere.
    for row in rows:
        for matrix, fraction in row.fraction_of_oracle.items():
            assert fraction <= 1.001, (row.workload, matrix)
    # Paper average: 66.78%; our step-level pipeline is more idealized
    # so the gap is narrower, but skewed matrices must stand out.
    average = fig18.average_fraction(rows)
    assert 0.6 < average <= 1.0
    by_name = {r.workload: r for r in rows}
    assert (
        by_name["sssp"].fraction_of_oracle["wi"]
        < by_name["sssp"].fraction_of_oracle["gy"]
    )
