"""Fig 23: relative energy vs the baseline accelerator."""

from benchmarks.conftest import run_once
from repro.experiments import fig23


def test_fig23_relative_energy(benchmark, context):
    rows = run_once(benchmark, fig23.run, context)
    fig23.main(context)
    stats = fig23.savings_summary(rows)
    # Paper: 54.98% total / 50.32% memory / 39.45% buffer savings.
    assert stats["total"] > 25.0
    assert stats["memory"] > 30.0
    assert stats["buffer"] > 10.0
    # OEI applications save roughly half the memory energy; the
    # producer-consumer-only solvers save less.
    by_name = {r.workload: r for r in rows}
    assert by_name["pr"].relative_memory < by_name["cg"].relative_memory
