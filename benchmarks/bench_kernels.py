"""Microbenchmarks of the library's hot kernels (GraphBLAS-mini
contractions, the OEI functional executor, format conversions) —
throughput numbers a downstream user would care about."""

import numpy as np
import pytest

from repro.dataflow import DataflowGraph, compile_program
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.graphblas import Matrix, Vector, mxm, vxm
from repro.matrices import rmat
from repro.oei import run_oei_pairs
from repro.semiring import AND_OR, MIN_ADD, MUL_ADD


@pytest.fixture(scope="module")
def medium():
    coo = rmat(4096, 80_000, seed=9)
    return Matrix(coo)


@pytest.fixture(scope="module")
def vector(medium):
    rng = np.random.default_rng(0)
    return Vector(medium.nrows, rng.random(medium.nrows))


def test_kernel_vxm_mul_add(benchmark, medium, vector):
    medium.csc  # materialize outside the timed region
    result = benchmark(vxm, vector, medium, MUL_ADD)
    assert result.nvals > 0


def test_kernel_vxm_min_add(benchmark, medium, vector):
    medium.csc
    result = benchmark(vxm, vector, medium, MIN_ADD)
    assert result.nvals > 0


def test_kernel_vxm_and_or(benchmark, medium):
    frontier = Vector.from_entries(medium.nrows, [0, 1, 2, 3], [1.0] * 4)
    medium.csc
    result = benchmark(vxm, frontier, medium, AND_OR)
    assert result.nvals >= 0


def test_kernel_mxm(benchmark):
    a = Matrix(rmat(512, 5000, seed=2))
    b = Matrix(rmat(512, 5000, seed=3))
    a.csr, b.csr
    result = benchmark(mxm, a, b, MUL_ADD)
    assert result.nnz > 0


def test_kernel_csr_csc_conversion(benchmark, medium):
    csr = medium.csr
    result = benchmark(csr.to_csc)
    assert result.nnz == csr.nnz


def test_kernel_oei_executor(benchmark, medium):
    g = DataflowGraph("pr_like")
    link = g.matrix("L")
    x, y = g.vector("x"), g.vector("y")
    out = g.vector("out")
    g.vxm("spmv", x, link, y, "mul_add")
    g.ewise("damp", "times", [y], out, immediate=0.85)
    g.carry(out, x)
    prog = compile_program(g)
    csc, csr = CSCMatrix.from_coo(medium.coo), CSRMatrix.from_coo(medium.coo)
    x0 = np.random.default_rng(1).random(medium.nrows)

    trace = benchmark(
        run_oei_pairs, csc, csr, prog, x0, 4, subtensor_cols=256
    )
    assert trace.n_iterations == 4
