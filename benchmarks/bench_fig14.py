"""Fig 14: speedup over the idealized sparse accelerator."""

from benchmarks.conftest import run_once
from repro.experiments import fig14


def test_fig14_speedup_over_ideal(benchmark, context):
    rows = run_once(benchmark, fig14.run, context)
    fig14.main(context)
    by_name = {r.workload: r for r in rows}
    # Paper: OEI-app geomeans 1.21x-2.62x; cg/bgs 0.75x-1.20x band.
    for name, row in by_name.items():
        if name in ("cg", "bgs"):
            assert 0.7 < row.geomean < 1.6, name
        else:
            assert 1.1 < row.geomean < 2.7, name
    # Paper: up to 3.59x overall.
    assert max(r.max for r in by_name.values()) < 3.7
