"""Extension study: what would fusing *more than two* iterations buy?

Generalizing OEI to a depth-``k`` fused chain divides matrix traffic by
``k`` while lengthening every element's residency by the extra stage
lags. Measured on the Table-I suite, the window growth is modest — the
extra lag is a few steps against thousands — so *buffer capacity* is
not what limits fusion depth. For matrices whose depth-2 window already
fits (road networks), deeper fusion looks free by this metric; the real
obstacles are elsewhere: one extra in-flight vector and one extra
pipeline stage per depth, and side reductions (residuals, convergence
checks) whose scalars cannot lag arbitrarily many iterations. The
skewed matrices (wi, bu) do not fit at *any* depth, so for them pairing
is already only partially captured. This bench records the numbers
behind that argument.
"""

from benchmarks.conftest import run_once
from repro.arch.config import scaled_buffer_bytes
from repro.experiments.report import format_table
from repro.matrices.suite import SUITE, load_suite_matrix
from repro.oei.reuse import reuse_footprint

DEPTHS = (2, 3, 4, 6)
MATRICES = ("ro", "gy", "wi", "bu")


def test_fusion_depth_tradeoff(benchmark):
    def sweep():
        out = {}
        for name in MATRICES:
            coo = load_suite_matrix(name)
            buffer_bytes = scaled_buffer_bytes(coo.nnz, SUITE[name].paper_nnz)
            rows = []
            for depth in DEPTHS:
                stats = reuse_footprint(coo, fusion_depth=depth)
                fits = stats.max_bytes() <= buffer_bytes * 0.75
                rows.append((depth, stats.max_pct, 1.0 / depth, fits))
            out[name] = rows
        return out

    results = run_once(benchmark, sweep)
    for name, rows in results.items():
        print(
            format_table(
                ["depth", "window max %", "matrix traffic factor", "fits buffer"],
                [(d, p, f, "yes" if ok else "no") for d, p, f, ok in rows],
                title=f"Fusion depth study: {name}",
            )
        )
        print()
        # Window grows monotonically with depth...
        pcts = [p for _, p, _, _ in rows]
        assert all(b >= a - 1e-9 for a, b in zip(pcts, pcts[1:])), name
    # ...but only modestly (extra lag << matrix dimension).
    for name, rows in results.items():
        assert rows[-1][1] < rows[0][1] * 1.5, name
    # Road networks fit at every probed depth; the skewed matrices fit
    # at none — buffer capacity is not the depth limiter either way.
    assert all(fits for _, _, _, fits in results["ro"])
    assert not any(fits for _, _, _, fits in results["wi"])
