"""Fig 17: speedup over the GPU framework (bfs, kcore, pr, sssp)."""

from benchmarks.conftest import run_once
from repro.experiments import fig17


def test_fig17_speedup_over_gpu(benchmark, context):
    rows = run_once(benchmark, fig17.run, context)
    fig17.main(context)
    overall = fig17.overall_geomean(rows)
    # Paper: 4.65x geometric mean.
    assert 2.5 < overall < 7.5
    for row in rows:
        assert row.geomean > 1.0, row.workload
