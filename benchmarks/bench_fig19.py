"""Fig 19: sensitivity to sparse tensor preprocessing."""

from benchmarks.conftest import run_once
from repro.experiments import fig19


def test_fig19_preprocessing_sensitivity(benchmark, context):
    rows = run_once(benchmark, fig19.run, context)
    fig19.main(context)
    by_variant = {r.variant: r for r in rows}
    # Paper: unoptimized Sparsepipe still achieves 1.37x over baseline.
    assert by_variant["none"].geomean > 1.2
    # Both optimizations together never lose to no optimization.
    assert by_variant["both"].geomean >= by_variant["none"].geomean
    # Blocked storage alone helps (paper: up to 1.12x).
    assert by_variant["blocked"].geomean > by_variant["none"].geomean
    # Combined benefit in the paper's 1.05x-1.34x band (slack for the
    # synthetic analogs).
    gain = by_variant["both"].geomean / by_variant["none"].geomean
    assert 1.0 < gain < 1.45
