"""Whole-evaluation summary: every Section VI headline claim."""

from benchmarks.conftest import is_full_sweep, run_once
from repro.experiments import summary


def test_summary_all_claims_hold(benchmark, context):
    claims = run_once(benchmark, summary.run, context)
    summary.main(context)
    if not is_full_sweep():
        # Subset smoke run: the paper's bands only apply to the full
        # (workload x matrix) sweep; just check the pipeline runs.
        assert claims
        return
    failing = [c.claim for c in claims if not c.holds]
    assert not failing, f"claims outside the paper's bands: {failing}"
