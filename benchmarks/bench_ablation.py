"""Ablation benches beyond the paper's figures — the design choices
DESIGN.md calls out: sub-tensor size, buffer capacity, eager IS
execution, and blocked-storage block size."""

import pytest

from benchmarks.conftest import run_once
from repro.arch.config import SparsepipeConfig
from repro.arch.simulator import SparsepipeSimulator
from repro.experiments.report import format_table
from repro.matrices.suite import SUITE


WORKLOAD, MATRIX = "pr", "wi"  # the buffer-pressure case


def _simulate(context, **config_overrides):
    cfg = SparsepipeConfig(**config_overrides)
    profile = context.profile(WORKLOAD, MATRIX)
    prep = context.prepared(MATRIX)
    return SparsepipeSimulator(cfg).run(
        profile, prep, paper_nnz=SUITE[MATRIX].paper_nnz
    )


def test_ablation_subtensor_size(benchmark, context):
    """Sub-tensor width trades pipeline overhead against buffer burst."""
    sizes = (16, 32, 64, 128, 256, 512)

    def sweep():
        return {t: _simulate(context, subtensor_cols=t) for t in sizes}

    results = run_once(benchmark, sweep)
    print(
        format_table(
            ["subtensor_cols", "cycles", "evicted KB", "bw util"],
            [
                (t, round(r.cycles), round(r.oom_evicted_bytes / 1e3),
                 round(r.bandwidth_utilization, 3))
                for t, r in results.items()
            ],
            title=f"Ablation: sub-tensor size ({WORKLOAD}-{MATRIX})",
        )
    )
    cycles = [r.cycles for r in results.values()]
    # Extremes should not beat the interior by much: the schedule is
    # robust but not flat.
    assert min(cycles) > 0


def test_ablation_buffer_capacity(benchmark, context):
    """Shrinking the buffer induces ping-pong traffic monotonically."""
    paper_nnz = SUITE[MATRIX].paper_nnz
    profile = context.profile(WORKLOAD, MATRIX)
    prep = context.prepared(MATRIX)
    capacities = [32 * 1024, 128 * 1024, 512 * 1024, 2 * 1024 * 1024]

    def sweep():
        out = {}
        for cap in capacities:
            cfg = SparsepipeConfig(buffer_bytes=cap)
            out[cap] = SparsepipeSimulator(cfg).run(profile, prep, paper_nnz=paper_nnz)
        return out

    results = run_once(benchmark, sweep)
    print(
        format_table(
            ["buffer KB", "cycles", "reload KB"],
            [
                (cap // 1024, round(r.cycles),
                 round(r.traffic.bytes_by_category["csr_reload"] / 1e3))
                for cap, r in results.items()
            ],
            title=f"Ablation: buffer capacity ({WORKLOAD}-{MATRIX})",
        )
    )
    reloads = [
        results[c].traffic.bytes_by_category["csr_reload"] for c in capacities
    ]
    assert all(a >= b - 1e-6 for a, b in zip(reloads, reloads[1:]))
    assert results[capacities[0]].cycles >= results[capacities[-1]].cycles


def test_ablation_eager_is(benchmark, context):
    """Eager CSR loading (Fig 9) reclaims otherwise-idle bandwidth."""

    def sweep():
        return (
            _simulate(context, eager_is=True),
            _simulate(context, eager_is=False),
        )

    on, off = run_once(benchmark, sweep)
    print(
        format_table(
            ["eager IS", "cycles", "bw util"],
            [
                ("on", round(on.cycles), round(on.bandwidth_utilization, 3)),
                ("off", round(off.cycles), round(off.bandwidth_utilization, 3)),
            ],
            title=f"Ablation: eager IS execution ({WORKLOAD}-{MATRIX})",
        )
    )
    assert on.cycles <= off.cycles * 1.001


@pytest.mark.parametrize("block_size", [16, 64, 256])
def test_ablation_block_size(benchmark, context, block_size):
    """Smaller blocks shrink per-block sharing; 256 (one-byte local
    coordinates) is the paper's choice."""
    from repro.formats.blocked import BlockedDualStorage
    from repro.matrices.suite import load_suite_matrix

    coo = load_suite_matrix(MATRIX)

    blocked = run_once(
        benchmark, BlockedDualStorage.from_coo, coo, block_size
    )
    from repro.formats.dual import DualStorage

    dual = DualStorage.from_coo(coo)
    ratio = blocked.storage_bytes() / dual.storage_bytes()
    print(f"block_size={block_size}: blocked/dual = {ratio:.3f}")
    assert ratio < 1.1


def test_ablation_dram_model(benchmark, context):
    """Flat streaming-efficiency DRAM vs the banked GDDR6X model: they
    agree on streaming workloads; the banked model penalizes the
    short-burst ping-pong reloads of the skewed matrices."""

    def sweep():
        out = {}
        for name in ("ro", "wi"):
            profile = context.profile(WORKLOAD, name)
            prep = context.prepared(name)
            paper_nnz = SUITE[name].paper_nnz
            flat = SparsepipeSimulator(SparsepipeConfig()).run(
                profile, prep, paper_nnz=paper_nnz
            )
            detailed = SparsepipeSimulator(
                SparsepipeConfig(detailed_dram=True)
            ).run(profile, prep, paper_nnz=paper_nnz)
            out[name] = (flat, detailed)
        return out

    results = run_once(benchmark, sweep)
    print(
        format_table(
            ["matrix", "flat cycles", "banked cycles", "banked/flat"],
            [
                (name, round(f.cycles), round(d.cycles), d.cycles / f.cycles)
                for name, (f, d) in results.items()
            ],
            title=f"Ablation: DRAM model fidelity ({WORKLOAD})",
        )
    )
    for name, (flat, detailed) in results.items():
        assert detailed.cycles >= flat.cycles * 0.999, name
