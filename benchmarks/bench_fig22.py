"""Fig 22: CPU/GPU bandwidth utilization per matrix."""

from benchmarks.conftest import run_once
from repro.experiments import fig22


def test_fig22_cpu_gpu_utilization(benchmark, context):
    rows = run_once(benchmark, fig22.run, context)
    fig22.main(context)
    by_system = {r.system: r for r in rows}
    cpu, gpu, sp = by_system["cpu"], by_system["gpu"], by_system["sparsepipe"]
    # Sparsepipe sustains higher utilization than both frameworks on
    # every matrix (the paper's Fig 21-vs-22 comparison).
    for matrix in cpu.utilization:
        assert sp.utilization[matrix] > cpu.utilization[matrix], matrix
        assert sp.utilization[matrix] > gpu.utilization[matrix], matrix
    # Caches depress apparent utilization on the small matrices.
    assert gpu.utilization["ca"] < gpu.utilization["eu"]
