"""Service smoke bench: submit-to-result latency, cold vs warm.

Boots an in-process :class:`~repro.service.queue.JobQueue` (no TCP —
this times the service machinery, not the socket) and records, into
``BENCH_service.json`` at the repository root:

- **cold** — per-point submit→result latency against an empty store
  (full simulation behind every answer);
- **warm** — the same points against the store the cold pass
  populated, served by a fresh queue from disk (and the second
  same-point hit from memory);
- **coalesced** — N identical concurrent submissions, total wall time
  for all N answers (one simulation fanned out).

The recorded claim is deliberately loose — warm serving must beat cold
simulation in aggregate — because per-point latencies at this scale
are microbenchmark-noisy; the JSON keeps the raw numbers for eyeballs
and trend tracking.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.experiments.runner import ExperimentContext
from repro.service import JobQueue

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Small, semiring-diverse point set: latency is per point, so the
#: bench does not need the full grid.
POINTS = (
    ("sparsepipe", "pr", "gy"),
    ("ideal", "pr", "gy"),
    ("sparsepipe", "kcore", "gy"),
    ("cpu", "bfs", "gy"),
)

#: Identical concurrent submissions for the coalescing measurement.
N_COALESCED = 8


async def _timed_round(queue: JobQueue, points) -> list:
    """Submit each point and await its result; per-point seconds."""
    latencies = []
    for point in points:
        start = time.perf_counter()
        job = await queue.result(await queue.submit(point), timeout=600)
        latencies.append(time.perf_counter() - start)
        assert job.status == "done", job.error
    return latencies


async def _measure(cache_dir: Path) -> dict:
    # Cold: empty store, every answer is a fresh simulation.
    cold_ctx = ExperimentContext(cache_dir=cache_dir)
    queue = JobQueue(context=cold_ctx)
    await queue.start()
    cold = await _timed_round(queue, POINTS)
    await queue.close()

    # Warm: a *fresh* queue over the now-populated store — answers
    # come from the sharded disk cache, not from process memory.
    warm_ctx = ExperimentContext(cache_dir=cache_dir)
    queue = JobQueue(context=warm_ctx)
    await queue.start()
    warm = await _timed_round(queue, POINTS)
    assert warm_ctx.metrics.value("sim.runs") == 0  # nothing re-simulated
    # Hot: the same queue again — the in-memory fast path.
    hot = await _timed_round(queue, POINTS)
    await queue.close()

    # Coalesced: N identical submissions in flight at once; one
    # simulation serves all N.
    co_ctx = ExperimentContext()
    queue = JobQueue(context=co_ctx)
    await queue.start()
    start = time.perf_counter()
    job_ids = [await queue.submit(POINTS[0]) for _ in range(N_COALESCED)]
    for job_id in job_ids:
        await queue.result(job_id, timeout=600)
    coalesced_total = time.perf_counter() - start
    assert co_ctx.metrics.value("sim.runs") == 1
    await queue.close()

    return {
        "points": [list(p) for p in POINTS],
        "cold_seconds": cold,
        "warm_seconds": warm,
        "hot_seconds": hot,
        "cold_total_seconds": sum(cold),
        "warm_total_seconds": sum(warm),
        "hot_total_seconds": sum(hot),
        "coalesced_submissions": N_COALESCED,
        "coalesced_total_seconds": coalesced_total,
    }


def test_service_latency(benchmark, tmp_path):
    doc = run_once(
        benchmark, lambda: asyncio.run(_measure(tmp_path / "cache"))
    )
    doc["warm_speedup"] = doc["cold_total_seconds"] / doc["warm_total_seconds"]
    OUTPUT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(
        f"service latency: cold {doc['cold_total_seconds'] * 1e3:.1f} ms, "
        f"warm {doc['warm_total_seconds'] * 1e3:.1f} ms "
        f"({doc['warm_speedup']:.1f}x), "
        f"hot {doc['hot_total_seconds'] * 1e3:.1f} ms, "
        f"{N_COALESCED} coalesced in "
        f"{doc['coalesced_total_seconds'] * 1e3:.1f} ms -> {OUTPUT.name}"
    )
    # The loose claim: a warm store must beat cold simulation overall.
    assert doc["warm_total_seconds"] < doc["cold_total_seconds"]