"""Reference-vs-vectorized backend wall-time comparison.

Times the Sparsepipe simulator's two backends on the same
(workload, matrix) points and records the result into
``BENCH_backend.json`` at the repository root — per-point wall times
and speedups plus the time-weighted aggregate. While timing, every
point is also checked for exact result equality, so the benchmark
doubles as one more differential run.

The full sweep is the complete (11 workloads x 9 matrices) grid —
every paper semiring and, deliberately, the lagging ``kpp``/``sssp``
points on every matrix, so the recorded aggregate is honest about the
slowest semirings rather than cherry-picking the vector-friendly ones
(docs/performance.md discusses the per-semiring spread). Under the CI
smoke subset (``REPRO_BENCH_WORKLOADS``/``REPRO_BENCH_MATRICES``) the
points collapse to that cross product and the headline speedup claim
is not asserted (a subset's aggregate is meaningless).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import is_full_sweep, run_once
from repro.arch.config import SparsepipeConfig
from repro.arch.simulator import SparsepipeSimulator
from repro.experiments.report import format_table
from repro.matrices.suite import SUITE

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_backend.json"

def _points(context):
    """The full (workload x matrix) grid — all 11 workloads on all 9
    suite matrices on a full sweep, the env subset otherwise."""
    return tuple(
        (w, m) for w in context.all_workloads() for m in context.all_matrices()
    )


def _timed_run(context, workload, matrix, backend):
    profile = context.profile(workload, matrix)
    prep = context.prepared(matrix)
    sim = SparsepipeSimulator(SparsepipeConfig(backend=backend))
    start = time.perf_counter()
    result = sim.run(
        profile, prep, paper_nnz=SUITE[matrix].paper_nnz, observers=()
    )
    return time.perf_counter() - start, result


def test_backend_speedup(benchmark, context):
    def sweep():
        points = []
        for workload, matrix in _points(context):
            ref_s, ref = _timed_run(context, workload, matrix, "reference")
            vec_s, vec = _timed_run(context, workload, matrix, "vectorized")
            assert ref == vec, f"backend mismatch on {workload}-{matrix}"
            points.append({
                "workload": workload,
                "matrix": matrix,
                "reference_seconds": ref_s,
                "vectorized_seconds": vec_s,
                "speedup": ref_s / vec_s,
            })
        return points

    points = run_once(benchmark, sweep)
    total_ref = sum(p["reference_seconds"] for p in points)
    total_vec = sum(p["vectorized_seconds"] for p in points)
    doc = {
        "points": points,
        "total_reference_seconds": total_ref,
        "total_vectorized_seconds": total_vec,
        "aggregate_speedup": total_ref / total_vec,
        "full_sweep": is_full_sweep(),
    }
    OUTPUT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    print(
        format_table(
            ["point", "reference s", "vectorized s", "speedup"],
            [
                (f"{p['workload']}-{p['matrix']}",
                 round(p["reference_seconds"], 3),
                 round(p["vectorized_seconds"], 3),
                 round(p["speedup"], 1))
                for p in points
            ],
            title=f"Backend speedup (aggregate "
                  f"{doc['aggregate_speedup']:.1f}x) -> {OUTPUT.name}",
        )
    )
    assert doc["aggregate_speedup"] > 1.0
    if is_full_sweep():
        # The honest full-grid claim: ~5.1x measured time-weighted over
        # all 99 points (including the comparison-heavy semirings that
        # only gain 1.5-3x), asserted at 4x to leave room for timer
        # noise — docs/performance.md has the per-semiring spread.
        assert doc["aggregate_speedup"] >= 4.0
