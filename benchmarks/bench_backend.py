"""Reference-vs-vectorized backend wall-time comparison.

Times the Sparsepipe simulator's two backends on the same
(workload, matrix) points and records the result into
``BENCH_backend.json`` at the repository root — per-point wall times
and speedups plus the time-weighted aggregate. While timing, every
point is also checked for exact result equality, so the benchmark
doubles as one more differential run.

A second, *observed* sweep times the same grid with a timeline and a
metrics observer attached (the ``python -m repro trace``
configuration) and records it as the ``observed_speedup`` section.
Batched event synthesis means observed runs execute on the vectorized
backend too; the sweep is also the no-fallback CI gate — it fails if
any observed point lands on the reference loop
(``sim.last_backend != "vectorized"``) or if the synthesized Chrome
trace / metrics digest differ from the reference event stream's.

The full sweep is the complete (11 workloads x 9 matrices) grid —
every paper semiring and, deliberately, the lagging ``kpp``/``sssp``
points on every matrix, so the recorded aggregate is honest about the
slowest semirings rather than cherry-picking the vector-friendly ones
(docs/performance.md discusses the per-semiring spread). Under the CI
smoke subset (``REPRO_BENCH_WORKLOADS``/``REPRO_BENCH_MATRICES``) the
points collapse to that cross product and the headline speedup claim
is not asserted (a subset's aggregate is meaningless).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import is_full_sweep, run_once
from repro.arch.config import SparsepipeConfig
from repro.arch.simulator import SparsepipeSimulator
from repro.experiments.report import format_table
from repro.matrices.suite import SUITE
from repro.obs.metrics import MetricsObserver
from repro.obs.timeline import TimelineObserver

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_backend.json"

#: Comparison-heavy semirings where vectorization historically helped
#: least; the specialized kernels (``repro.semiring.kernels``) lifted
#: them, and the full sweep asserts none regresses below 2.5x.
LAGGARDS = ("kcore", "knn", "gcn", "kpp")
LAGGARD_FLOOR = 2.5

def _points(context):
    """The full (workload x matrix) grid — all 11 workloads on all 9
    suite matrices on a full sweep, the env subset otherwise."""
    return tuple(
        (w, m) for w in context.all_workloads() for m in context.all_matrices()
    )


#: Best-of-N timing per point: most grid points run in single-digit
#: milliseconds, where a one-shot measurement can be thrown 10x by a GC
#: pause or scheduler hiccup; the minimum of three runs is the standard
#: microbenchmark defence and keeps the per-point speedups honest.
REPEATS = 3


def _timed_run(context, workload, matrix, backend):
    profile = context.profile(workload, matrix)
    prep = context.prepared(matrix)
    best = None
    for _ in range(REPEATS):
        sim = SparsepipeSimulator(SparsepipeConfig(backend=backend))
        start = time.perf_counter()
        result = sim.run(
            profile, prep, paper_nnz=SUITE[matrix].paper_nnz, observers=()
        )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _timed_observed_run(context, workload, matrix, backend):
    """One run in the trace configuration: timeline + metrics attached.

    Returns the wall time plus everything the equality gate compares —
    the result, the serialized Chrome trace, and the metrics digest.
    """
    profile = context.profile(workload, matrix)
    prep = context.prepared(matrix)
    best = None
    for _ in range(REPEATS):
        timeline = TimelineObserver()
        metrics = MetricsObserver()
        sim = SparsepipeSimulator(SparsepipeConfig(backend=backend))
        start = time.perf_counter()
        result = sim.run(
            profile, prep, paper_nnz=SUITE[matrix].paper_nnz,
            observers=(timeline, metrics),
        )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        if backend == "vectorized":
            # The no-fallback gate: an observed point silently landing
            # on the reference loop is exactly the bug class this PR
            # removed.
            assert sim.last_backend == "vectorized", (
                f"observed {workload}-{matrix} fell back to the "
                "reference loop"
            )
    registry = metrics.finalize(result)
    trace = json.dumps(timeline.to_chrome_trace(), sort_keys=True)
    return best, result, trace, registry.digest()


def test_backend_speedup(benchmark, context):
    def sweep():
        points = []
        observed = []
        for workload, matrix in _points(context):
            ref_s, ref = _timed_run(context, workload, matrix, "reference")
            vec_s, vec = _timed_run(context, workload, matrix, "vectorized")
            assert ref == vec, f"backend mismatch on {workload}-{matrix}"
            points.append({
                "workload": workload,
                "matrix": matrix,
                "reference_seconds": ref_s,
                "vectorized_seconds": vec_s,
                "speedup": ref_s / vec_s,
            })
            oref_s, oref, ref_trace, ref_digest = _timed_observed_run(
                context, workload, matrix, "reference"
            )
            ovec_s, ovec, vec_trace, vec_digest = _timed_observed_run(
                context, workload, matrix, "vectorized"
            )
            assert oref == ovec, f"observed mismatch on {workload}-{matrix}"
            assert ref_trace == vec_trace, (
                f"synthesized trace differs on {workload}-{matrix}"
            )
            assert ref_digest == vec_digest, (
                f"metrics digest differs on {workload}-{matrix}"
            )
            observed.append({
                "workload": workload,
                "matrix": matrix,
                "reference_seconds": oref_s,
                "vectorized_seconds": ovec_s,
                "speedup": oref_s / ovec_s,
            })
        return points, observed

    points, observed = run_once(benchmark, sweep)
    total_ref = sum(p["reference_seconds"] for p in points)
    total_vec = sum(p["vectorized_seconds"] for p in points)
    obs_ref = sum(p["reference_seconds"] for p in observed)
    obs_vec = sum(p["vectorized_seconds"] for p in observed)
    per_workload = {}
    for p in points:
        acc = per_workload.setdefault(p["workload"], [0.0, 0.0])
        acc[0] += p["reference_seconds"]
        acc[1] += p["vectorized_seconds"]
    doc = {
        "points": points,
        "total_reference_seconds": total_ref,
        "total_vectorized_seconds": total_vec,
        "aggregate_speedup": total_ref / total_vec,
        "per_workload_speedup": {
            w: ref / vec for w, (ref, vec) in sorted(per_workload.items())
        },
        "observed_speedup": {
            "points": observed,
            "total_reference_seconds": obs_ref,
            "total_vectorized_seconds": obs_vec,
            "aggregate_speedup": obs_ref / obs_vec,
        },
        "full_sweep": is_full_sweep(),
    }
    OUTPUT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    obs_by_point = {
        (p["workload"], p["matrix"]): p["speedup"] for p in observed
    }
    print(
        format_table(
            ["point", "reference s", "vectorized s", "speedup", "observed"],
            [
                (f"{p['workload']}-{p['matrix']}",
                 round(p["reference_seconds"], 3),
                 round(p["vectorized_seconds"], 3),
                 round(p["speedup"], 1),
                 round(obs_by_point[(p["workload"], p["matrix"])], 1))
                for p in points
            ],
            title=f"Backend speedup (aggregate "
                  f"{doc['aggregate_speedup']:.1f}x, observed "
                  f"{doc['observed_speedup']['aggregate_speedup']:.1f}x) "
                  f"-> {OUTPUT.name}",
        )
    )
    assert doc["aggregate_speedup"] > 1.0
    assert doc["observed_speedup"]["aggregate_speedup"] > 1.0
    if is_full_sweep():
        # The honest full-grid claims, measured time-weighted over all
        # 99 points (including the comparison-heavy semirings),
        # asserted below the measured values to leave room for timer
        # noise — docs/performance.md has the per-semiring spread. The
        # observed sweep carries the event-synthesis + replay cost, so
        # its floor is lower than the zero-observer sweep's.
        assert doc["aggregate_speedup"] >= 4.0
        assert doc["observed_speedup"]["aggregate_speedup"] >= 3.0
        # The specialized semiring kernels lifted the comparison-heavy
        # laggards; hold that ground per workload, time-weighted over
        # the workload's row of the grid.
        for w in LAGGARDS:
            assert doc["per_workload_speedup"][w] >= LAGGARD_FLOOR, (
                f"laggard {w} regressed below {LAGGARD_FLOOR}x: "
                f"{doc['per_workload_speedup'][w]:.2f}x"
            )
