"""Fig 15: bandwidth-utilization timelines of the four highlighted
(workload, matrix) pairs."""

from benchmarks.conftest import run_once
from repro.experiments import fig15


def test_fig15_bandwidth_timelines(benchmark, context):
    series = run_once(benchmark, fig15.run, context)
    fig15.main(context)
    by_pair = {(s.workload, s.matrix): s for s in series}
    assert len(by_pair) == 4
    # Every sampled run yields the 25 bins of the paper's 4% intervals.
    for s in series:
        assert len(s.samples) == 25
    # sssp-bu is the well-performing case (paper: 2.9x, sustained high
    # utilization); kcore-eu is compute-limited (paper: 1.18x).
    sssp_bu = by_pair[("sssp", "bu")]
    kcore_eu = by_pair[("kcore", "eu")]
    assert sssp_bu.speedup_over_ideal > kcore_eu.speedup_over_ideal
    assert sssp_bu.mean_utilization > 0.8
