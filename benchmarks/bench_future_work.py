"""Future-work study (paper Section VIII): the OEI dataflow on
general-purpose hardware, quantified.

Compares, per matrix: the plain CPU framework, a CPU executing OEI in
software (halved matrix traffic but software buffer management and
synchronization), and the iso-CPU Sparsepipe (hardware support at the
same 40 GB/s). The paper's Section II-B argument — software-only OEI
"negat[es] the potential benefits" — should show as software OEI
landing between the two.
"""

from benchmarks.conftest import run_once
from repro.arch.config import CPU_DDR4, SparsepipeConfig
from repro.arch.simulator import SparsepipeSimulator
from repro.baselines import CPUModel, SoftwareOEIModel
from repro.experiments.report import format_table
from repro.matrices.suite import SUITE
from repro.util.numeric import geomean

WORKLOAD = "pr"


def test_future_work_software_oei(benchmark, context):
    def sweep():
        iso_cpu = SparsepipeConfig().with_memory(CPU_DDR4)
        rows = []
        for matrix in context.all_matrices():
            profile = context.profile(WORKLOAD, matrix)
            prep = context.prepared(matrix)
            paper_nnz = SUITE[matrix].paper_nnz
            cpu = CPUModel().run(profile, prep, paper_nnz=paper_nnz)
            sw = SoftwareOEIModel().run(profile, prep, paper_nnz=paper_nnz)
            hw = SparsepipeSimulator(iso_cpu).run(profile, prep, paper_nnz=paper_nnz)
            rows.append((matrix, cpu.seconds / sw.seconds, cpu.seconds / hw.seconds))
        return rows

    rows = run_once(benchmark, sweep)
    print(format_table(
        ["matrix", "software OEI vs CPU", "hardware (iso-CPU) vs CPU"],
        rows,
        title=f"Future work: OEI on general-purpose hardware ({WORKLOAD})",
    ))
    sw_gain = geomean(r[1] for r in rows)
    hw_gain = geomean(r[2] for r in rows)
    print(f"geomean: software OEI {sw_gain:.2f}x, hardware {hw_gain:.2f}x")
    # Hardware support must retain a clear edge over software OEI
    # (Section II-B), and software OEI must not dominate hardware.
    assert hw_gain > sw_gain
    assert hw_gain > 1.2
