"""Fig 20: blocked-storage footprint and performance per area."""

from benchmarks.conftest import run_once
from repro.experiments import fig20


def test_fig20a_blocked_storage(benchmark, context):
    rows = run_once(benchmark, fig20.run_storage, context)
    average = sum(r.ratio_reordered for r in rows) / len(rows)
    # Paper: blocked dual storage is 39.2% of naive dual storage.
    assert 0.30 < average < 0.50
    for row in rows:
        assert row.ratio_reordered < 0.6, row.matrix


def test_fig20b_perf_per_area(benchmark, context):
    rows = run_once(benchmark, fig20.run_perf_per_area, context)
    fig20.main(context)
    by_system = {r.system: r for r in rows}
    sp = by_system["sparsepipe"]
    gpu = by_system["gpu"]
    # Paper: 9.84x over CPU and 5.38x over GPU.
    assert 5.0 < sp.perf_per_area < 20.0
    assert 2.0 < sp.perf_per_area / gpu.perf_per_area < 10.0
    # Area calibration: the paper's published die size.
    assert abs(sp.area_mm2 - 253.95) < 3.0
