"""Fig 21: Sparsepipe bandwidth utilization."""

from benchmarks.conftest import run_once
from repro.experiments import fig21


def test_fig21_bandwidth_utilization(benchmark, context):
    rows = run_once(benchmark, fig21.run, context)
    fig21.main(context)
    stats = fig21.summary(rows)
    # Paper: 82.93% across all applications, 92.94% memory-bound only.
    assert stats["all"] > 0.75
    assert stats["memory_bound"] > 0.85
    assert stats["memory_bound"] >= stats["all"]
