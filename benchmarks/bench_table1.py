"""Table I: on-chip footprint of the OEI reuse window."""

from benchmarks.conftest import run_once
from repro.experiments import table1


def test_table1_reuse_footprint(benchmark):
    rows = run_once(benchmark, table1.run)
    table1.main()
    # Shape assertions against the paper's Table I.
    by_name = {r.matrix: r for r in rows}
    assert by_name["bu"].max_pct > 80.0         # paper: 90.0
    assert by_name["ca"].avg_pct > 20.0         # paper: 32.9
    assert by_name["ro"].max_pct < 5.0          # paper: 1.9
    assert by_name["eu"].max_pct < 10.0         # paper: 4.3
    assert by_name["wi"].avg_pct > by_name["co"].avg_pct
