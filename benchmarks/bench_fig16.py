"""Fig 16: speedup over the CPU STA framework (iso-GPU and iso-CPU)."""

from benchmarks.conftest import run_once
from repro.experiments import fig16


def test_fig16_speedup_over_cpu(benchmark, context):
    rows = run_once(benchmark, fig16.run, context)
    fig16.main(context)
    non_gcn = [r for r in rows if r.workload != "gcn"]
    geomeans = [r.iso_gpu_geomean for r in non_gcn]
    # Paper: 12.20x-35.14x per-application geomeans (iso-GPU).
    assert min(geomeans) > 8.0
    assert max(geomeans) < 45.0
    # Paper: iso-CPU still wins 1.31x-3.57x (pure OEI benefit).
    iso_cpu = [r.iso_cpu_geomean for r in non_gcn]
    assert min(iso_cpu) > 1.0
    assert max(iso_cpu) < 4.5
